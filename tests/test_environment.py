"""Tests for the environment abstraction and registry."""

import pytest

from repro.testbed.environment import (
    CAP_RRC,
    CELLULAR_CAPABILITIES,
    ENVIRONMENTS,
    SERVER_IP,
    WIFI_CAPABILITIES,
    Environment,
    build_environment,
    environment_entry,
    environment_keys,
    register_environment,
)


class TestRegistry:
    def test_default_keys(self):
        assert environment_keys() == ["cellular-3g", "cellular-lte",
                                      "wifi"]

    def test_unknown_key_error_names_known(self):
        with pytest.raises(KeyError, match="wifi"):
            environment_entry("ethernet")
        with pytest.raises(KeyError, match="unknown environment"):
            build_environment("ethernet")

    def test_entries_carry_capabilities(self):
        assert ENVIRONMENTS["wifi"].capabilities == WIFI_CAPABILITIES
        assert ENVIRONMENTS["cellular-3g"].capabilities == \
            CELLULAR_CAPABILITIES
        assert CAP_RRC in ENVIRONMENTS["cellular-lte"].capabilities

    def test_register_environment_round_trips(self, monkeypatch):
        def build(seed=0, emulated_rtt=0.0, **params):
            return build_environment("wifi", seed=seed,
                                     emulated_rtt=emulated_rtt)

        monkeypatch.delitem(ENVIRONMENTS, "custom", raising=False)
        register_environment("custom", build, description="alias",
                             capabilities=WIFI_CAPABILITIES)
        env = build_environment("custom", seed=1)
        assert env.key == "custom"
        del ENVIRONMENTS["custom"]


class TestProtocol:
    @pytest.mark.parametrize("key", ["wifi", "cellular-3g",
                                     "cellular-lte"])
    def test_build_and_protocol_surface(self, key):
        env = build_environment(key, seed=0, emulated_rtt=0.02)
        assert isinstance(env, Environment)
        assert env.key == key
        assert env.server_ip == SERVER_IP
        assert env.netem.delay == 0.02
        phone = env.attach_phone("nexus5")
        assert phone in env.phones
        before = env.sim.now
        env.settle(0.25)
        assert env.sim.now == pytest.approx(before + 0.25)

    def test_set_emulated_rtt(self):
        env = build_environment("wifi", seed=0, emulated_rtt=0.02)
        env.set_emulated_rtt(0.05)
        assert env.netem.delay == 0.05

    def test_shared_wired_core_across_radios(self):
        wifi = build_environment("wifi", seed=0)
        cell = build_environment("cellular-3g", seed=0)
        # Both assemble the same wired half from WiredCore.
        assert wifi.server_ip == cell.server_ip == SERVER_IP
        assert wifi.netem.name == cell.netem.name == "server-egress"
        assert type(wifi.wired_core) is type(cell.wired_core)

    def test_cellular_rejects_cross_traffic(self):
        env = build_environment("cellular-lte", seed=0)
        with pytest.raises(NotImplementedError, match="cross traffic"):
            env.start_cross_traffic()

    def test_env_params_forwarded_wifi(self):
        env = build_environment("wifi", seed=0, sniffer_count=1)
        assert len(env.sniffers) == 1

    def test_env_params_override_rrc_preset(self):
        env = build_environment("cellular-3g", seed=0, t1=2.5)
        assert env.rrc.config.t1 == 2.5

    def test_cellular_presets_differ(self):
        umts = build_environment("cellular-3g", seed=0)
        lte = build_environment("cellular-lte", seed=0)
        assert lte.rrc.config.promo_idle_dch.mean < \
            umts.rrc.config.promo_idle_dch.mean

    def test_registry_builds_attach_no_default_phone(self):
        # Environment builders own phone attachment; the legacy
        # auto-attached cellular phone must not appear.
        env = build_environment("cellular-3g", seed=0)
        assert env.phones == [] and env.phone is None

    def test_observe_and_snapshot(self):
        env = build_environment("cellular-lte", seed=0)
        env.observe()
        assert env.sim.metrics.enabled
        env.settle(0.1)
        snapshot = env.metrics_snapshot()
        names = {entry["name"] for entry in snapshot["metrics"]}
        assert "scheduler_events_fired" in names
