"""Tests for the environment abstraction and registry."""

import pytest

from repro.testbed.environment import (
    CAP_RRC,
    CELLULAR_CAPABILITIES,
    ENVIRONMENTS,
    KNOWN_CAPABILITIES,
    PREDICTIVE_SLEEP_CAPABILITIES,
    SERVER_IP,
    TWT_CAPABILITIES,
    WIFI_CAPABILITIES,
    Environment,
    build_environment,
    environment_entry,
    environment_keys,
    register_environment,
)


class TestRegistry:
    def test_default_keys(self):
        assert environment_keys() == ["cellular-3g", "cellular-lte",
                                      "wifi", "wifi-predictive-sleep",
                                      "wifi-twt"]

    def test_unknown_key_error_names_known(self):
        with pytest.raises(KeyError, match="wifi"):
            environment_entry("ethernet")
        with pytest.raises(KeyError, match="unknown environment"):
            build_environment("ethernet")

    def test_entries_carry_capabilities(self):
        assert ENVIRONMENTS["wifi"].capabilities == WIFI_CAPABILITIES
        assert ENVIRONMENTS["cellular-3g"].capabilities == \
            CELLULAR_CAPABILITIES
        assert CAP_RRC in ENVIRONMENTS["cellular-lte"].capabilities

    def test_register_environment_round_trips(self, monkeypatch):
        def build(seed=0, emulated_rtt=0.0, **params):
            return build_environment("wifi", seed=seed,
                                     emulated_rtt=emulated_rtt)

        monkeypatch.delitem(ENVIRONMENTS, "custom", raising=False)
        register_environment("custom", build, description="alias",
                             capabilities=WIFI_CAPABILITIES)
        env = build_environment("custom", seed=1)
        assert env.key == "custom"
        del ENVIRONMENTS["custom"]

    def test_register_rejects_unknown_capability_tag(self):
        with pytest.raises(ValueError, match="unknown capability.*warp"):
            register_environment("bogus", lambda **kw: None,
                                 capabilities={"warp-drive"})
        assert "bogus" not in ENVIRONMENTS

    def test_register_rejects_typoed_tag_names_known_set(self):
        # The error message must list the valid vocabulary so the typo
        # is a one-glance fix.
        with pytest.raises(ValueError, match="bus-sleep"):
            register_environment("bogus", lambda **kw: None,
                                 capabilities={"bus_sleep"})
        assert "bogus" not in ENVIRONMENTS

    def test_register_rejects_duplicate_capability_tags(self):
        with pytest.raises(ValueError, match="duplicate capability.*psm"):
            register_environment("bogus", lambda **kw: None,
                                 capabilities=["psm", "sniffers", "psm"])
        assert "bogus" not in ENVIRONMENTS

    def test_known_capability_vocabulary_pinned(self):
        assert KNOWN_CAPABILITIES == frozenset({
            "cross-traffic", "bus-sleep", "psm", "sniffers", "rrc",
            "twt", "predictive-sleep",
        })

    def test_full_registry_tag_sets_pinned(self):
        # Every default environment's declared capabilities, exactly.
        declared = {key: ENVIRONMENTS[key].capabilities
                    for key in environment_keys()}
        assert declared == {
            "wifi": frozenset({"cross-traffic", "bus-sleep", "psm",
                               "sniffers"}),
            "wifi-twt": frozenset({"cross-traffic", "bus-sleep",
                                   "sniffers", "twt"}),
            "wifi-predictive-sleep": frozenset(
                {"cross-traffic", "bus-sleep", "sniffers",
                 "predictive-sleep"}),
            "cellular-3g": frozenset({"rrc"}),
            "cellular-lte": frozenset({"rrc"}),
        }
        for capabilities in declared.values():
            assert capabilities <= KNOWN_CAPABILITIES


class TestProtocol:
    @pytest.mark.parametrize("key", ["wifi", "wifi-twt",
                                     "wifi-predictive-sleep",
                                     "cellular-3g", "cellular-lte"])
    def test_build_and_protocol_surface(self, key):
        env = build_environment(key, seed=0, emulated_rtt=0.02)
        assert isinstance(env, Environment)
        assert env.key == key
        assert env.server_ip == SERVER_IP
        assert env.netem.delay == 0.02
        phone = env.attach_phone("nexus5")
        assert phone in env.phones
        before = env.sim.now
        env.settle(0.25)
        assert env.sim.now == pytest.approx(before + 0.25)

    def test_set_emulated_rtt(self):
        env = build_environment("wifi", seed=0, emulated_rtt=0.02)
        env.set_emulated_rtt(0.05)
        assert env.netem.delay == 0.05

    def test_shared_wired_core_across_radios(self):
        wifi = build_environment("wifi", seed=0)
        cell = build_environment("cellular-3g", seed=0)
        # Both assemble the same wired half from WiredCore.
        assert wifi.server_ip == cell.server_ip == SERVER_IP
        assert wifi.netem.name == cell.netem.name == "server-egress"
        assert type(wifi.wired_core) is type(cell.wired_core)

    def test_cellular_rejects_cross_traffic(self):
        env = build_environment("cellular-lte", seed=0)
        with pytest.raises(NotImplementedError, match="cross traffic"):
            env.start_cross_traffic()

    def test_env_params_forwarded_wifi(self):
        env = build_environment("wifi", seed=0, sniffer_count=1)
        assert len(env.sniffers) == 1

    def test_env_params_forwarded_powersave(self):
        twt = build_environment("wifi-twt", seed=0, sp_interval=0.25,
                                drift_rate=100e-6, sniffer_count=0)
        assert twt.twt.sp_interval == 0.25
        assert twt.twt.drift_rate == 100e-6
        pred = build_environment("wifi-predictive-sleep", seed=0,
                                 fallback_timeout=0.3, sniffer_count=0)
        assert pred.predictor.fallback_timeout == 0.3

    def test_powersave_phones_get_custom_stations(self):
        from repro.wifi.predictive import PredictiveSleepStation
        from repro.wifi.twt import TwtStation

        twt_env = build_environment("wifi-twt", seed=0, sniffer_count=0)
        assert isinstance(twt_env.attach_phone("nexus5").sta, TwtStation)
        pred_env = build_environment("wifi-predictive-sleep", seed=0,
                                     sniffer_count=0)
        assert isinstance(pred_env.attach_phone("nexus5").sta,
                          PredictiveSleepStation)

    def test_powersave_class_capabilities_match_registry(self):
        assert ENVIRONMENTS["wifi-twt"].capabilities == TWT_CAPABILITIES
        assert ENVIRONMENTS["wifi-predictive-sleep"].capabilities == \
            PREDICTIVE_SLEEP_CAPABILITIES

    def test_env_params_override_rrc_preset(self):
        env = build_environment("cellular-3g", seed=0, t1=2.5)
        assert env.rrc.config.t1 == 2.5

    def test_cellular_presets_differ(self):
        umts = build_environment("cellular-3g", seed=0)
        lte = build_environment("cellular-lte", seed=0)
        assert lte.rrc.config.promo_idle_dch.mean < \
            umts.rrc.config.promo_idle_dch.mean

    def test_registry_builds_attach_no_default_phone(self):
        # Environment builders own phone attachment; the legacy
        # auto-attached cellular phone must not appear.
        env = build_environment("cellular-3g", seed=0)
        assert env.phones == [] and env.phone is None

    def test_observe_and_snapshot(self):
        env = build_environment("cellular-lte", seed=0)
        env.observe()
        assert env.sim.metrics.enabled
        env.settle(0.1)
        snapshot = env.metrics_snapshot()
        names = {entry["name"] for entry in snapshot["metrics"]}
        assert "scheduler_events_fired" in names
