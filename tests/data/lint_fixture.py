"""Seeded fixture: one violation per lint rule, plus pragma interplay.

Linted by tests/test_lint_engine.py and tests/test_lint_reporters.py;
the golden reports in this directory pin the expected output.  Line
numbers matter — edit only together with the goldens.
"""

import random
import time
from random import randint


def sample(sim, metrics, values=[]):
    metrics.inc("samples_total")
    start = time.time()
    jitter = random.random()
    sim.schedule(-0.5, sample)
    try:
        values.append(start + jitter + randint(0, 2))
    except:
        pass
    print("sampled")
    return values


def quiet(sim):
    x = 1  # obs: caller-guarded
    try:
        sim.run()
    except Exception:
        pass
    print(time.time())  # lint: disable=RL101,RL203 — deliberate demo
    print(time.time())  # lint: disable=RL101 — only the clock suppressed
    return x


def persist(journal, checkpoint_file, record):
    import json

    journal.write(record)
    json.dump(record, checkpoint_file)
    return journal


def poke(sim):
    sim._heap.clear()
    return sim._wheel_cursor


def snoop(store_path, segment_dir):
    raw = open(store_path / "index.jsonl")
    head = segment_dir.read_text()
    return raw, head
