"""Unit tests for RNG streams, tracing, and unit helpers."""

import pytest

from repro.sim.rng import RngRegistry
from repro.sim.trace import TraceRecorder
from repro.sim.units import (
    TU, bits_to_bytes, bytes_to_bits, kbps, mbps, ms, seconds_to_ms,
    seconds_to_us, tu, us,
)


class TestRngRegistry:
    def test_streams_are_cached(self):
        registry = RngRegistry(1)
        assert registry.stream("a") is registry.stream("a")

    def test_streams_are_independent(self):
        registry = RngRegistry(1)
        a_first = registry.stream("a").random()
        # Drawing from b must not change a's future sequence.
        registry2 = RngRegistry(1)
        registry2.stream("b").random()
        assert registry2.stream("a").random() == a_first

    def test_seed_derivation_stable(self):
        assert (RngRegistry(5).stream("x").random()
                == RngRegistry(5).stream("x").random())

    def test_different_names_different_sequences(self):
        registry = RngRegistry(0)
        seq_a = [registry.stream("a").random() for _ in range(5)]
        seq_b = [registry.stream("b").random() for _ in range(5)]
        assert seq_a != seq_b

    def test_names_listing(self):
        registry = RngRegistry(0)
        registry.stream("zeta")
        registry.stream("alpha")
        assert registry.names() == ["alpha", "zeta"]
        assert "alpha" in registry


class TestTraceRecorder:
    def test_records_when_enabled(self):
        trace = TraceRecorder(enabled=True)
        trace.record(1.0, "sdio", "bus sleep", bus="b0")
        assert trace.count("sdio") == 1
        assert trace.records[0].fields == {"bus": "b0"}

    def test_disabled_recorder_drops_everything(self):
        trace = TraceRecorder(enabled=False)
        trace.record(1.0, "sdio", "bus sleep")
        assert len(trace) == 0

    def test_category_filter(self):
        trace = TraceRecorder(enabled=True, categories={"psm"})
        trace.record(1.0, "sdio", "ignored")
        trace.record(2.0, "psm", "kept")
        assert [r.category for r in trace] == ["psm"]

    def test_limit_counts_dropped(self):
        trace = TraceRecorder(enabled=True, limit=2)
        for i in range(5):
            trace.record(i, "x", "m")
        assert len(trace) == 2
        assert trace.dropped == 3

    def test_select_by_message_substring(self):
        trace = TraceRecorder(enabled=True)
        trace.record(0.0, "a", "bus sleep")
        trace.record(0.1, "a", "bus wake")
        assert trace.count(message="sleep") == 1

    def test_summary_counts_categories(self):
        trace = TraceRecorder(enabled=True)
        trace.record(0.0, "a", "x")
        trace.record(0.0, "a", "y")
        trace.record(0.0, "b", "z")
        assert trace.summary() == {"a": 2, "b": 1}

    def test_clear(self):
        trace = TraceRecorder(enabled=True)
        trace.record(0.0, "a", "x")
        trace.clear()
        assert len(trace) == 0

    def test_dropped_tracked_per_category(self):
        trace = TraceRecorder(enabled=True, limit=2)
        trace.record(0.0, "a", "kept")
        trace.record(0.1, "b", "kept")
        trace.record(0.2, "a", "dropped")
        trace.record(0.3, "a", "dropped")
        trace.record(0.4, "c", "dropped")
        assert trace.dropped == 3
        assert trace.dropped_by_category == {"a": 2, "c": 1}

    def test_summary_with_dropped(self):
        trace = TraceRecorder(enabled=True, limit=1)
        trace.record(0.0, "a", "kept")
        trace.record(0.1, "b", "dropped")
        summary = trace.summary(dropped=True)
        assert summary["recorded"] == {"a": 1}
        assert summary["dropped"] == {"b": 1}

    def test_select_uses_category_index(self):
        trace = TraceRecorder(enabled=True)
        for index in range(10):
            trace.record(index, "a" if index % 2 else "b", f"m{index}")
        selected = trace.select(category="a")
        assert [r.message for r in selected] == ["m1", "m3", "m5", "m7", "m9"]
        assert trace.count("a") == 5
        assert trace.select(category="a", message="m3")[0].time == 3
        assert trace.select(category="missing") == []

    def test_clear_resets_dropped_and_index(self):
        trace = TraceRecorder(enabled=True, limit=1)
        trace.record(0.0, "a", "kept")
        trace.record(0.1, "a", "dropped")
        trace.clear()
        assert trace.dropped == 0
        assert trace.dropped_by_category == {}
        assert trace.select(category="a") == []
        trace.record(0.2, "a", "fresh start")
        assert trace.count("a") == 1


class TestUnits:
    def test_ms_us(self):
        assert ms(30) == pytest.approx(0.030)
        assert us(500) == pytest.approx(0.0005)

    def test_time_unit_is_1024_us(self):
        assert TU == pytest.approx(1024e-6)
        assert tu(100) == pytest.approx(0.1024)  # the paper's beacon interval

    def test_round_trips(self):
        assert seconds_to_ms(ms(17)) == pytest.approx(17)
        assert seconds_to_us(us(250)) == pytest.approx(250)
        assert bits_to_bytes(bytes_to_bits(1500)) == pytest.approx(1500)

    def test_rates(self):
        assert mbps(54) == 54e6
        assert kbps(64) == 64e3
