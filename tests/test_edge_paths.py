"""Edge-path tests: reordering, malformed input, misc small surfaces."""

import pytest

from repro.net import wire
from repro.net.addresses import ip
from repro.net.netem import NetemQdisc
from repro.net.packet import IcmpEcho, Packet, UdpDatagram
from repro.sim.events import Event


class TestTcpUnderReordering:
    def test_transfer_completes_despite_jitter_reordering(self, lan):
        # Netem jitter without maintain_order reorders segments; our TCP
        # drops out-of-order arrivals and recovers via RTO, so the byte
        # count must still come out exact.
        sim, a, b = lan
        a.netem = NetemQdisc(sim, delay=0.02, jitter=0.015,
                             rng=sim.rng.stream("reorder"))
        received = []
        conns = []
        b.stack.tcp.listen(80, conns.append)
        client = a.stack.tcp.connect(b.ip_addr, 80)
        connected = []
        client.on_connected = lambda c: connected.append(True)
        sim.run(until=5.0)
        assert connected
        conns[0].on_data = lambda c, n, m: received.append(n)
        client.send(4000)  # three segments, likely reordered
        sim.run(until=60.0)
        assert sum(received) == 4000
        assert conns[0].bytes_received == 4000

    def test_duplicate_segment_ignored(self, lan):
        sim, a, b = lan
        conns = []
        b.stack.tcp.listen(80, conns.append)
        client = a.stack.tcp.connect(b.ip_addr, 80)
        sim.run(until=0.5)
        server = conns[0]
        total = []
        server.on_data = lambda c, n, m: total.append(n)
        client.send(100)
        sim.run(until=1.0)
        # Replay the same data segment manually (a stale duplicate).
        from repro.net.packet import TCP_ACK, TCP_PSH, TcpSegment

        duplicate = TcpSegment(client.local_port, 80,
                               (client.snd_nxt - 100) & 0xFFFFFFFF,
                               client.rcv_nxt, TCP_ACK | TCP_PSH, 100)
        stale = Packet(a.ip_addr, b.ip_addr, duplicate)
        a.stack.send(stale)
        sim.run(until=2.0)
        assert sum(total) == 100  # not double counted
        assert server.bytes_received == 100


class TestWireErrorPaths:
    def test_unsupported_protocol_rejected(self):
        import struct

        header = struct.pack(
            "!BBHHHBBH4s4s", 0x45, 0, 20, 0, 0, 64, 99, 0,
            ip("1.1.1.1").packed, ip("2.2.2.2").packed)
        with pytest.raises(ValueError, match="unsupported protocol"):
            wire.decode_ipv4(header)

    def test_unsupported_icmp_type_rejected(self):
        packet = Packet(ip("1.1.1.1"), ip("2.2.2.2"), IcmpEcho(8, 1, 1, 8))
        raw = bytearray(wire.encode_ipv4(packet))
        raw[20] = 13  # ICMP timestamp request: not implemented
        with pytest.raises(ValueError, match="unsupported ICMP"):
            wire.decode_ipv4(bytes(raw))

    def test_truncated_transport_rejected(self):
        packet = Packet(ip("1.1.1.1"), ip("2.2.2.2"),
                        UdpDatagram(1000, 2000, 0))
        raw = wire.encode_ipv4(packet)[:24]  # cut into the UDP header
        with pytest.raises(ValueError):
            wire.decode_ipv4(raw)

    def test_encode_unknown_payload_rejected(self):
        packet = Packet(ip("1.1.1.1"), ip("2.2.2.2"),
                        UdpDatagram(1000, 2000, 0))
        packet.payload = object.__new__(UdpDatagram)  # degenerate
        packet.payload.src_port = 1
        packet.payload.dst_port = 2
        packet.payload.payload_size = 0
        # Still a UdpDatagram: encodes fine.
        assert wire.encode_ipv4(packet)

        class Alien:
            protocol = 200
            wire_size = 0

        packet.payload = Alien()
        with pytest.raises(TypeError):
            wire.encode_ipv4(packet)


class TestEventDetails:
    def test_event_repr_states(self, sim):
        event = sim.schedule(1.0, lambda: None, label="demo")
        assert "pending" in repr(event)
        event.cancel()
        assert "canceled" in repr(event)

    def test_events_sort_stably(self):
        first = Event(1.0, lambda: None)
        second = Event(1.0, lambda: None)
        assert first < second  # sequence breaks the tie

    def test_simulator_repr(self, sim):
        sim.schedule(1.0, lambda: None)
        text = repr(sim)
        assert "pending=1" in text


class TestRenderingEdges:
    def test_table_without_title(self):
        from repro.analysis.render import Table

        table = Table(["a"])
        table.add_row("x")
        assert table.render().startswith("a")

    def test_boxstats_scaled_preserves_shape(self):
        from repro.analysis.boxstats import BoxStats

        box = BoxStats([1.0, 2.0, 3.0, 4.0, 100.0])
        scaled = box.scaled(1000)
        assert scaled.median == pytest.approx(box.median * 1000)
        assert scaled.outliers == [100000.0]
        assert scaled.n == box.n
