"""Tests for the sharded campaign fabric (planner, transports, runner).

Two layers of guarantees are pinned here:

* **Planner algebra** — Hypothesis properties: for every grid and every
  shard count 1..8, the planned shards are an *exact partition* of the
  grid (each cell in exactly one shard), assignment is the pure
  function ``shard_index(fingerprint, n)``, and replanning around a
  dead shard is deterministic and never moves a surviving cell.
* **The ISSUE acceptance matrix** — a 200-cell mixed WiFi+cellular
  campaign produces byte-identical results, merged metrics, and all
  three decomposition report formats across serial, 4-worker parallel,
  4-shard fabric, crash-then-resume, and cache-warm execution — and
  the cache-warm run executes zero cells.
"""

import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from tests.chaos import ChaosInjector, SimulatedCrash, crash_after
from repro.analysis.decompose import decompose_campaign, render_report
from repro.testbed.campaign import Campaign
from repro.testbed.fabric import (
    FabricRunner, InProcessTransport, MultiprocessTransport, ShardPlan,
    plan_shards, replan, shard_index,
)
from repro.testbed.store import ResultStore

REPORT_FORMATS = ("text", "json", "prom")


def serialized(campaign):
    return json.dumps([result.to_dict() for result in campaign.results],
                      sort_keys=True)


def counters(campaign):
    return {metric["name"]: metric["value"]
            for metric in campaign.run_metrics["metrics"]}


def grid_cells(**grid):
    return list(enumerate(Campaign(**grid).cells()))


# -- planner units ------------------------------------------------------------


class TestShardIndex:
    def test_pure_function_of_fingerprint_and_count(self):
        fingerprint = "ab" * 32
        assert shard_index(fingerprint, 4) \
            == shard_index(fingerprint, 4)
        assert 0 <= shard_index(fingerprint, 4) < 4
        assert shard_index(fingerprint, 1) == 0

    def test_rejects_non_positive_counts(self):
        with pytest.raises(ValueError, match="shard_count"):
            shard_index("00" * 32, 0)

    def test_uses_leading_64_bits(self):
        # Two fingerprints differing only past the key prefix collide.
        a = "f" * 16 + "0" * 48
        b = "f" * 16 + "1" * 48
        assert shard_index(a, 7) == shard_index(b, 7)


class TestPlanShards:
    GRID = dict(envs=("wifi", "cellular-lte"), phones=("nexus5",),
                rtts=(0.02, 0.05), tools=("acutemon", "ping"), count=2)

    def test_assignments_follow_the_hash(self):
        cells = grid_cells(**self.GRID)
        plan = plan_shards(cells, 4)
        assert plan.shard_count == 4
        for sid, shard in enumerate(plan.shards):
            for index, spec in shard:
                fingerprint = spec.fingerprint()
                assert shard_index(fingerprint, 4) == sid
                assert plan.assignments[fingerprint] == sid

    def test_precomputed_fingerprints_change_nothing(self):
        cells = grid_cells(**self.GRID)
        fingerprints = [spec.fingerprint() for _, spec in cells]
        assert plan_shards(cells, 3).assignments \
            == plan_shards(cells, 3,
                           fingerprints=fingerprints).assignments

    def test_cells_iterates_shard_major(self):
        cells = grid_cells(**self.GRID)
        plan = plan_shards(cells, 4)
        flat = list(plan.cells())
        assert flat == [cell for shard in plan.shards for cell in shard]
        assert sorted(flat) == cells

    def test_repr_shows_shard_sizes(self):
        plan = plan_shards(grid_cells(**self.GRID), 2)
        assert "ShardPlan" in repr(plan)


class TestReplan:
    GRID = dict(envs=("wifi",), phones=("nexus5", "nexus4"),
                rtts=(0.02, 0.05, 0.08), tools=("acutemon",), count=2)

    def test_survivors_keep_their_cells(self):
        cells = grid_cells(**self.GRID)
        plan = plan_shards(cells, 4)
        moved = replan(plan, {1})
        for fingerprint, home in plan.assignments.items():
            if home != 1:
                assert moved.assignments[fingerprint] == home
            else:
                assert moved.assignments[fingerprint] != 1

    def test_dead_cells_rehash_over_sorted_survivors(self):
        cells = grid_cells(**self.GRID)
        plan = plan_shards(cells, 4)
        moved = replan(plan, {2})
        alive = [0, 1, 3]
        for fingerprint, home in plan.assignments.items():
            if home == 2:
                expected = alive[shard_index(fingerprint, len(alive))]
                assert moved.assignments[fingerprint] == expected

    def test_replan_is_still_an_exact_partition(self):
        cells = grid_cells(**self.GRID)
        moved = replan(plan_shards(cells, 4), {0, 3})
        assert sorted(moved.cells()) == cells
        assert moved.shards[0] == () and moved.shards[3] == ()

    def test_replan_needs_a_survivor(self):
        plan = plan_shards(grid_cells(**self.GRID), 2)
        with pytest.raises(ValueError, match="surviving"):
            replan(plan, {0, 1})


# -- planner properties -------------------------------------------------------

grids = st.fixed_dictionaries({
    "envs": st.lists(
        st.sampled_from(["wifi", "cellular-lte", "cellular-3g"]),
        min_size=1, max_size=2, unique=True).map(tuple),
    "phones": st.lists(
        st.sampled_from(["nexus5", "nexus4", "htc_one"]),
        min_size=1, max_size=2, unique=True).map(tuple),
    "rtts": st.lists(
        st.floats(min_value=0.005, max_value=0.2,
                  allow_nan=False, allow_infinity=False),
        min_size=1, max_size=3, unique=True).map(tuple),
    "tools": st.lists(st.sampled_from(["acutemon", "ping", "httping"]),
                      min_size=1, max_size=2, unique=True).map(tuple),
    "count": st.integers(1, 2),
    "base_seed": st.integers(0, 2 ** 16),
})


class TestPlannerProperties:
    @given(grid=grids, shard_count=st.integers(1, 8))
    @settings(max_examples=50,
              suppress_health_check=[HealthCheck.too_slow])
    def test_shards_are_an_exact_partition(self, grid, shard_count):
        cells = grid_cells(**grid)
        plan = plan_shards(cells, shard_count)
        assert len(plan.shards) == shard_count
        flat = sorted(plan.cells())
        assert flat == cells  # every cell exactly once, none invented
        assert len(plan.assignments) == len(cells)
        for sid, shard in enumerate(plan.shards):
            for _, spec in shard:
                assert shard_index(spec.fingerprint(), shard_count) \
                    == sid

    @given(grid=grids, shard_count=st.integers(2, 8), data=st.data())
    @settings(max_examples=50,
              suppress_health_check=[HealthCheck.too_slow])
    def test_replan_is_deterministic_and_sticky(self, grid, shard_count,
                                                data):
        cells = grid_cells(**grid)
        plan = plan_shards(cells, shard_count)
        dead = data.draw(st.integers(0, shard_count - 1), label="dead")
        once = replan(plan, {dead})
        twice = replan(plan, {dead})
        # Deterministic: same inputs, same plan, independently derived.
        assert once.shards == twice.shards
        assert once.assignments == twice.assignments
        # Still an exact partition, with the dead shard drained.
        assert sorted(once.cells()) == cells
        assert once.shards[dead] == ()
        # Sticky: no surviving cell moved.
        for fingerprint, home in plan.assignments.items():
            if home != dead:
                assert once.assignments[fingerprint] == home


# -- transports ---------------------------------------------------------------


class TestInProcessTransport:
    GRID = dict(envs=("wifi",), phones=("nexus5",), rtts=(0.02, 0.05),
                tools=("acutemon", "ping"), count=2)

    def _tasks(self):
        plan = plan_shards(grid_cells(**self.GRID), 3)
        return [{"shard": sid, "collect_metrics": False, "policy": None,
                 "specs": [spec.to_dict() for _, spec in shard]}
                for sid, shard in enumerate(plan.shards) if shard], plan

    def test_dispatch_yields_in_task_order(self):
        tasks, plan = self._tasks()
        out = list(InProcessTransport().dispatch(tasks))
        assert [sid for sid, _, _ in out] \
            == [task["shard"] for task in tasks]
        for (sid, records, error), task in zip(out, tasks):
            assert error is None
            assert len(records) == len(task["specs"])

    def test_failed_task_reports_error_not_raise(self):
        tasks, _ = self._tasks()
        tasks[0]["specs"] = [{"malformed": True}]
        out = list(InProcessTransport().dispatch(tasks))
        sid, records, error = out[0]
        assert records is None and error is not None
        # Later tasks are unaffected by the earlier failure.
        assert all(err is None for _, _, err in out[1:])

    def test_multiprocess_transport_empty_dispatch(self):
        assert list(MultiprocessTransport().dispatch([])) == []


# -- the acceptance matrix ----------------------------------------------------

#: The ISSUE's acceptance grid: 2 envs x 1 phone x 50 RTTs x 2 tools
#: x 1 repeat = 200 mixed WiFi+cellular cells.
ACCEPT_GRID = dict(envs=("wifi", "cellular-lte"), phones=("nexus5",),
                   rtts=tuple(0.01 + 0.002 * i for i in range(50)),
                   tools=("acutemon", "ping"), count=1)


@pytest.fixture(scope="module")
def accept():
    """The uninterrupted serial reference every mode must reproduce."""
    campaign = Campaign(**ACCEPT_GRID)
    campaign.run(workers=1, collect_metrics=True)
    assert len(campaign.results) == 200
    report = decompose_campaign(campaign)
    return {
        "results": serialized(campaign),
        "metrics": json.dumps(campaign.merged_metrics(), sort_keys=True),
        "reports": {fmt: render_report(report, fmt)
                    for fmt in REPORT_FORMATS},
        "seeds": [result.seed for result in campaign.results],
    }


def assert_matches_reference(campaign, accept):
    """Byte-identical results, merged metrics, and all three reports."""
    assert campaign.quarantine == []
    assert serialized(campaign) == accept["results"]
    assert json.dumps(campaign.merged_metrics(), sort_keys=True) \
        == accept["metrics"]
    report = decompose_campaign(campaign)
    for fmt in REPORT_FORMATS:
        assert render_report(report, fmt) == accept["reports"][fmt]


class TestAcceptanceMatrix:
    def test_parallel_four_workers(self, accept):
        campaign = Campaign(**ACCEPT_GRID)
        campaign.run(workers=4, collect_metrics=True)
        assert_matches_reference(campaign, accept)

    def test_sharded_four_shards(self, accept):
        campaign = Campaign(**ACCEPT_GRID)
        campaign.run(shards=4, collect_metrics=True)
        assert_matches_reference(campaign, accept)
        stats = counters(campaign)
        assert stats["campaign.shards_planned"] == 4
        assert stats["campaign.cells_run"] == 200

    def test_sharded_in_process_transport(self, accept):
        campaign = Campaign(**ACCEPT_GRID)
        runner = FabricRunner(campaign, shard_count=4,
                              transport=InProcessTransport())
        runner.run(collect_metrics=True)
        assert runner.mode == "sharded"
        assert_matches_reference(campaign, accept)

    def test_crash_then_resume(self, accept, tmp_path):
        checkpoint = tmp_path / "sweep.jsonl"
        crashed = Campaign(**ACCEPT_GRID)
        with pytest.MonkeyPatch.context() as mp:
            crash_after(97, mp)
            with pytest.raises(SimulatedCrash):
                crashed.run(workers=1, checkpoint=checkpoint,
                            collect_metrics=True)
        resumed = Campaign(**ACCEPT_GRID)
        resumed.run(workers=1, checkpoint=checkpoint, resume=True,
                    collect_metrics=True)
        assert_matches_reference(resumed, accept)
        stats = counters(resumed)
        assert stats["campaign.cells_resumed"] == 97
        assert stats["campaign.cells_run"] == 103

    def test_cache_warm_executes_zero_cells(self, accept, tmp_path):
        root = tmp_path / "store"
        cold = Campaign(**ACCEPT_GRID)
        cold.run(workers=1, collect_metrics=True,
                 store=ResultStore(root))
        assert_matches_reference(cold, accept)
        assert counters(cold)["campaign.store_writes"] == 200
        # The warm run must never reach run_cell: every cell is served
        # from the store, and the injector would fail any execution.
        injector = ChaosInjector(always_fail=set(accept["seeds"]))
        with pytest.MonkeyPatch.context() as mp:
            injector.install(mp)
            warm = Campaign(**ACCEPT_GRID)
            warm.run(workers=1, collect_metrics=True,
                     store=ResultStore(root))
        assert injector.calls == {}
        assert_matches_reference(warm, accept)
        stats = counters(warm)
        assert stats["campaign.cache_hits"] == 200
        assert stats.get("campaign.cells_run", 0) == 0
        assert stats.get("campaign.store_writes", 0) == 0

    def test_sharded_warm_also_executes_zero_cells(self, accept,
                                                   tmp_path):
        root = tmp_path / "store"
        cold = Campaign(**ACCEPT_GRID)
        cold.run(shards=4, collect_metrics=True, store=ResultStore(root))
        assert_matches_reference(cold, accept)
        injector = ChaosInjector(always_fail=set(accept["seeds"]))
        with pytest.MonkeyPatch.context() as mp:
            injector.install(mp)
            warm = Campaign(**ACCEPT_GRID)
            warm.run(shards=4, collect_metrics=True,
                     store=ResultStore(root))
        assert injector.calls == {}
        assert_matches_reference(warm, accept)
        stats = counters(warm)
        assert stats["campaign.cache_hits"] == 200
        # Nothing pending, so nothing was planned or dispatched.
        assert stats.get("campaign.shards_planned", 0) == 0


# A grid mixing the classic PSM environment with both power-save
# machines (TWT service periods, EAPS-style predictive sleep): the
# fabric guarantees must hold for custom-station environments too.
MIXED_GRID = dict(envs=("wifi", "wifi-twt", "wifi-predictive-sleep"),
                  phones=("nexus5",),
                  rtts=tuple(0.01 + 0.01 * i for i in range(8)),
                  tools=("acutemon", "ping"), count=2, base_seed=31)


@pytest.fixture(scope="module")
def accept_mixed():
    """Serial reference for the mixed power-save grid."""
    campaign = Campaign(**MIXED_GRID)
    campaign.run(workers=1, collect_metrics=True)
    assert len(campaign.results) == 48
    assert {result.env for result in campaign.results} \
        == set(MIXED_GRID["envs"])
    report = decompose_campaign(campaign)
    return {
        "results": serialized(campaign),
        "metrics": json.dumps(campaign.merged_metrics(), sort_keys=True),
        "reports": {fmt: render_report(report, fmt)
                    for fmt in REPORT_FORMATS},
        "seeds": [result.seed for result in campaign.results],
    }


class TestMixedPowersaveAcceptance:
    """The acceptance matrix over a grid that includes TWT and
    predictive-sleep cells: every execution mode must be bit-identical
    to the serial reference, merged metrics included."""

    def test_parallel_four_workers(self, accept_mixed):
        campaign = Campaign(**MIXED_GRID)
        campaign.run(workers=4, collect_metrics=True)
        assert_matches_reference(campaign, accept_mixed)

    def test_sharded_four_shards(self, accept_mixed):
        campaign = Campaign(**MIXED_GRID)
        campaign.run(shards=4, collect_metrics=True)
        assert_matches_reference(campaign, accept_mixed)
        stats = counters(campaign)
        assert stats["campaign.shards_planned"] == 4
        assert stats["campaign.cells_run"] == 48

    def test_crash_then_resume(self, accept_mixed, tmp_path):
        checkpoint = tmp_path / "mixed.jsonl"
        crashed = Campaign(**MIXED_GRID)
        with pytest.MonkeyPatch.context() as mp:
            crash_after(20, mp)
            with pytest.raises(SimulatedCrash):
                crashed.run(workers=1, checkpoint=checkpoint,
                            collect_metrics=True)
        resumed = Campaign(**MIXED_GRID)
        resumed.run(workers=1, checkpoint=checkpoint, resume=True,
                    collect_metrics=True)
        assert_matches_reference(resumed, accept_mixed)
        stats = counters(resumed)
        assert stats["campaign.cells_resumed"] == 20
        assert stats["campaign.cells_run"] == 28

    def test_cache_warm_executes_zero_cells(self, accept_mixed,
                                            tmp_path):
        root = tmp_path / "store"
        cold = Campaign(**MIXED_GRID)
        cold.run(workers=1, collect_metrics=True,
                 store=ResultStore(root))
        assert_matches_reference(cold, accept_mixed)
        injector = ChaosInjector(always_fail=set(accept_mixed["seeds"]))
        with pytest.MonkeyPatch.context() as mp:
            injector.install(mp)
            warm = Campaign(**MIXED_GRID)
            warm.run(workers=1, collect_metrics=True,
                     store=ResultStore(root))
        assert injector.calls == {}
        assert_matches_reference(warm, accept_mixed)
        stats = counters(warm)
        assert stats["campaign.cache_hits"] == 48
        assert stats.get("campaign.cells_run", 0) == 0


class TestFabricRunnerContract:
    GRID = dict(envs=("wifi",), phones=("nexus5",), rtts=(0.02, 0.05),
                tools=("acutemon", "ping"), count=2)

    def test_shard_count_must_be_positive(self):
        with pytest.raises(ValueError, match="shard_count"):
            FabricRunner(Campaign(**self.GRID), shard_count=0)

    def test_resume_requires_checkpoint(self):
        runner = FabricRunner(Campaign(**self.GRID), shard_count=2,
                              transport=InProcessTransport())
        with pytest.raises(ValueError, match="checkpoint"):
            runner.run(resume=True)

    def test_progress_fires_once_per_cell(self):
        campaign = Campaign(**self.GRID)
        runner = FabricRunner(campaign, shard_count=3,
                              transport=InProcessTransport())
        seen = []
        runner.run(progress=lambda spec: seen.append(spec.seed))
        assert sorted(seen) \
            == sorted(spec.seed for spec in campaign.cells())

    def test_plan_exposed_after_run(self):
        campaign = Campaign(**self.GRID)
        runner = FabricRunner(campaign, shard_count=3,
                              transport=InProcessTransport())
        assert runner.plan is None
        runner.run()
        assert isinstance(runner.plan, ShardPlan)
        assert sorted(runner.plan.cells()) \
            == list(enumerate(Campaign(**self.GRID).cells()))
