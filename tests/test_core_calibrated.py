"""Tests for overhead calibration (§4.2.2's closing remark)."""

import statistics

import pytest

from repro.core.calibrated import OverheadCalibrator
from repro.testbed.experiments import acutemon_experiment


class TestCalibratorMechanics:
    def test_untrained_raises(self):
        calibrator = OverheadCalibrator()
        with pytest.raises(RuntimeError):
            calibrator.overhead()
        assert not calibrator.trained

    def test_train_from_known_rtt(self):
        calibrator = OverheadCalibrator()
        measured = [0.0525, 0.0530, 0.0528, 0.0527]
        calibrator.train_from_known_rtt(measured, true_rtt=0.050)
        assert calibrator.trained
        assert calibrator.overhead() == pytest.approx(0.00275, abs=5e-4)

    def test_correct_never_negative(self):
        calibrator = OverheadCalibrator()
        calibrator.train_from_known_rtt([0.010, 0.011, 0.012], 0.005)
        assert calibrator.correct(0.001) == 0.0

    def test_correct_all(self):
        calibrator = OverheadCalibrator()
        calibrator.train_from_known_rtt([0.032, 0.033, 0.034], 0.030)
        corrected = calibrator.correct_all([0.043, 0.053])
        assert corrected[0] == pytest.approx(0.040, abs=1e-3)
        assert corrected[1] == pytest.approx(0.050, abs=1e-3)


class TestCalibrationEndToEnd:
    def test_calibrate_on_one_path_correct_another(self):
        # Train on a 20 ms reference path; validate on 85 and 135 ms.
        train = acutemon_experiment("nexus5", emulated_rtt=0.020, count=40,
                                    seed=301)
        calibrator = OverheadCalibrator()
        added = calibrator.train_from_records(train.collector.completed())
        assert added == 40

        for true_rtt in (0.085, 0.135):
            test = acutemon_experiment("nexus5", emulated_rtt=true_rtt,
                                       count=40, seed=302)
            raw_error = abs(statistics.median(test.user_rtts) - true_rtt)
            residual = calibrator.residual_error(test.user_rtts, true_rtt)
            # Calibration removes most of the (already small) bias: the
            # paper's "the true value can be obtained by performing
            # calibration".
            assert residual < raw_error
            assert residual < 1e-3, true_rtt

    def test_calibration_transfers_only_within_a_phone(self):
        # A Nexus 5 calibration applied to a slow phone undercorrects —
        # overheads are phone-specific (the paper's Figure 7 point).
        n5 = acutemon_experiment("nexus5", emulated_rtt=0.020, count=40,
                                 seed=303)
        calibrator = OverheadCalibrator()
        calibrator.train_from_records(n5.collector.completed())

        slow = acutemon_experiment("xperia_j", emulated_rtt=0.085, count=40,
                                   seed=304)
        own = OverheadCalibrator()
        own.train_from_records(slow.collector.completed())
        cross_residual = calibrator.residual_error(slow.user_rtts, 0.085)
        own_residual = own.residual_error(slow.user_rtts, 0.085)
        assert own_residual < cross_residual

    def test_training_without_sniffer(self):
        # Field scenario: no sniffer, but a reference server of known RTT.
        reference = acutemon_experiment("nexus4", emulated_rtt=0.050,
                                        count=40, seed=305)
        calibrator = OverheadCalibrator()
        calibrator.train_from_known_rtt(reference.user_rtts, 0.050)
        target = acutemon_experiment("nexus4", emulated_rtt=0.135, count=40,
                                     seed=306)
        assert calibrator.residual_error(target.user_rtts, 0.135) < 1.5e-3
