"""Causal delay decomposition: per-probe attribution and campaign reports.

Pins the PR's acceptance properties:

* per-probe attribution sums **exactly** to the measured user RTT on
  the integer-nanosecond grid, with an explicit, never-negative
  ``unattributed`` residual;
* the campaign decomposition report is bit-identical across serial,
  parallel, and crash+resume runs;
* the ``repro report`` / ``campaign --report-out`` surfaces work.
"""

import json

import pytest

from repro.analysis.decompose import (
    decompose_campaign,
    decompose_snapshot,
    render_report,
    write_report,
)
from repro.cli import main
from repro.core.measurement import ProbeRecord
from repro.obs.attribution import (
    COMPONENTS,
    RESIDUAL,
    attribute_record,
    spans_by_probe,
)
from repro.obs.names import SPAN_SDIO_PROMOTION, SPAN_WIRE_NETEM
from repro.obs.spans import SpanTracker
from repro.testbed.campaign import Campaign
from repro.testbed.experiments import ping_experiment, tool_experiment


def _record(probe_id, send, recv):
    record = ProbeRecord(probe_id)
    record.user_send = send
    record.user_recv = recv
    return record


class TestAttributeRecord:
    def test_exact_sum_identity_and_clipping(self):
        spans = SpanTracker(enabled=True)
        # Ambient span bracketing the window: only the overlap counts.
        spans.record(SPAN_SDIO_PROMOTION, 0.9, 1.2, probe_id=7)
        spans.record(SPAN_WIRE_NETEM, 1.2, 1.23, probe_id=7)
        record = _record(7, 1.0, 1.25)
        attribution = attribute_record(record, spans_by_probe(spans)[7])
        assert attribution.total_ns == 250_000_000
        assert attribution.component_ns["sdio.promotion"] == 200_000_000
        assert attribution.component_ns["wire"] == 30_000_000
        assert attribution.residual_ns == 20_000_000
        assert (sum(attribution.component_ns.values())
                + attribution.residual_ns) == attribution.total_ns

    def test_overclaiming_spans_clamped_to_budget(self):
        spans = SpanTracker(enabled=True)
        # Overlapping mechanisms that together exceed the window: the
        # later component is clamped, residual stays at zero, never
        # negative.
        spans.record(SPAN_SDIO_PROMOTION, 1.0, 1.2, probe_id=1)
        spans.record(SPAN_WIRE_NETEM, 1.0, 1.2, probe_id=1)
        attribution = attribute_record(_record(1, 1.0, 1.2),
                                       spans_by_probe(spans)[1])
        assert attribution.component_ns["sdio.promotion"] == 200_000_000
        assert attribution.component_ns["wire"] == 0
        assert attribution.residual_ns == 0

    def test_incomplete_record_skipped(self):
        record = ProbeRecord(3)
        record.user_send = 1.0  # never answered
        assert attribute_record(record, []) is None

    def test_components_dict_covers_declared_order(self):
        attribution = attribute_record(_record(1, 0.0, 0.1), [])
        components = attribution.components()
        assert tuple(components) == COMPONENTS
        assert components[RESIDUAL] == pytest.approx(0.1)


class TestExperimentAttribution:
    def test_ping_attributions_sum_exactly(self):
        result = ping_experiment(count=8, observe=True)
        assert len(result.attributions) == 8
        for attribution in result.attributions:
            assert attribution.residual_ns >= 0
            assert (sum(attribution.component_ns.values())
                    + attribution.residual_ns) == attribution.total_ns
        # 1s-interval ping on a sleeping bus: promotion inflation shows.
        assert any(a.component_ns["sdio.promotion"] > 0
                   for a in result.attributions)
        assert all(a.component_ns["wire"] > 0
                   for a in result.attributions)

    def test_httping_attributions_sum_exactly(self):
        result = tool_experiment("httping", count=6, observe=True)
        assert result.attributions
        for attribution in result.attributions:
            assert attribution.residual_ns >= 0
            assert (sum(attribution.component_ns.values())
                    + attribution.residual_ns) == attribution.total_ns

    def test_unobserved_cell_has_no_attributions(self):
        result = ping_experiment(count=2, observe=False)
        assert result.attributions == []

    def test_snapshot_series_counts_match(self):
        result = ping_experiment(count=5, observe=True)
        slice_ = decompose_snapshot(result.metrics_snapshot())
        assert slice_.probes == 5
        for stats in slice_.components:
            assert stats.count == 5  # residual included, same count
        shares = [stats.share for stats in slice_.components]
        assert sum(shares) == pytest.approx(1.0)


def _campaign():
    return Campaign(phones=("nexus5",), rtts=(0.02,),
                    tools=("ping", "acutemon"), count=4, base_seed=3)


class TestCampaignReport:
    def test_decompose_requires_metrics(self):
        campaign = _campaign()
        campaign.run()
        assert decompose_campaign(campaign) is None

    def test_report_shape_and_dominant(self):
        campaign = _campaign()
        campaign.run(collect_metrics=True)
        report = decompose_campaign(campaign)
        assert len(report.slices) == 2
        assert report.overall is not None
        for slice_ in report.slices + [report.overall]:
            assert slice_.dominant in COMPONENTS
            assert [stats.name for stats in slice_.components] \
                == list(COMPONENTS)
        # At 20ms wire RTT the wired path dominates every cell.
        assert report.overall.dominant == "wire"

    def test_bit_identical_serial_parallel_resume(self, tmp_path):
        serial = _campaign()
        serial.run(collect_metrics=True)
        parallel = _campaign()
        parallel.run(collect_metrics=True, workers=2)
        journal = tmp_path / "cells.jsonl"
        interrupted = _campaign()
        interrupted.run(collect_metrics=True, checkpoint=str(journal))
        lines = journal.read_text(encoding="utf-8").splitlines()
        journal.write_text("\n".join(lines[:1]) + "\n", encoding="utf-8")
        resumed = _campaign()
        resumed.run(collect_metrics=True, checkpoint=str(journal),
                    resume=True)
        texts = {}
        for label, campaign in (("serial", serial), ("parallel", parallel),
                                ("resumed", resumed)):
            report = decompose_campaign(campaign)
            texts[label] = {fmt: render_report(report, fmt)
                            for fmt in ("text", "json", "prom")}
        assert texts["serial"] == texts["parallel"] == texts["resumed"]

    def test_write_report_formats_by_suffix(self, tmp_path):
        campaign = _campaign()
        campaign.run(collect_metrics=True)
        report = decompose_campaign(campaign)
        assert write_report(tmp_path / "r.json", report) == "json"
        assert write_report(tmp_path / "r.prom", report) == "prom"
        assert write_report(tmp_path / "r.txt", report) == "text"
        doc = json.loads((tmp_path / "r.json").read_text(encoding="utf-8"))
        assert len(doc["slices"]) == 2
        assert doc["overall"]["dominant"] == "wire"
        prom = (tmp_path / "r.prom").read_text(encoding="utf-8")
        assert "# TYPE decomposition_component_seconds_total gauge" in prom
        assert 'component="unattributed"' in prom


class TestReportCli:
    def test_campaign_report_out_then_report_command(self, tmp_path,
                                                     capsys):
        campaign_path = tmp_path / "campaign.json"
        report_path = tmp_path / "report.txt"
        assert main(["--count", "4", "campaign", "--rtts", "20",
                     "--tools", "ping", "--out", str(campaign_path),
                     "--report-out", str(report_path)]) == 0
        out = capsys.readouterr().out
        assert "wrote decomposition report (text)" in out
        direct = report_path.read_text(encoding="utf-8")
        assert "Delay decomposition" in direct
        assert "Dominant" in direct

        assert main(["report", str(campaign_path)]) == 0
        assert capsys.readouterr().out == direct

        json_path = tmp_path / "report.json"
        assert main(["report", str(campaign_path), "--format", "json",
                     "--out", str(json_path)]) == 0
        capsys.readouterr()
        doc = json.loads(json_path.read_text(encoding="utf-8"))
        assert doc["overall"]["dominant"] == "wire"

    def test_report_errors_without_metrics(self, tmp_path, capsys):
        campaign_path = tmp_path / "campaign.json"
        assert main(["--count", "2", "campaign", "--rtts", "20",
                     "--tools", "ping", "--out",
                     str(campaign_path)]) == 0
        capsys.readouterr()
        assert main(["report", str(campaign_path)]) == 1
        assert "no decomposition data" in capsys.readouterr().out
