"""Tests for the access point: beaconing, association, routing, buffering."""

import pytest

from repro.net.addresses import ip
from repro.sim.units import tu
from repro.wifi.sta import PowerState, PsmConfig
from tests.conftest import make_wifi_cell


class TestBeaconing:
    def test_beacons_strictly_periodic(self, sim):
        channel, ap, _server, _hosts = make_wifi_cell(sim)
        times = []
        channel.add_monitor(
            lambda f, ts, te, st: times.append(ts)
            if type(f).__name__ == "BeaconFrame" else None)
        sim.run(until=1.05)
        assert len(times) == 10  # every 102.4 ms
        interval = tu(ap.beacon_interval_tu)
        for index, t in enumerate(times, start=1):
            # Beacons may slip a little under contention, never run early.
            assert t >= index * interval - 1e-9
            assert t - index * interval < 0.005

    def test_beacon_counter(self, sim):
        _channel, ap, _server, _hosts = make_wifi_cell(sim)
        sim.run(until=1.05)
        assert ap.beacons_sent == 10

    def test_custom_beacon_interval(self, sim):
        from repro.net.addresses import MacAddress
        from repro.wifi.ap import AccessPoint
        from repro.wifi.channel import WifiChannel

        channel = WifiChannel(sim, name="fast")
        ap = AccessPoint(sim, channel, MacAddress.from_index(0x44),
                         ip("192.168.9.1"), "192.168.9.0/24",
                         beacon_interval_tu=50)
        sim.run(until=1.0)
        assert ap.beacons_sent == pytest.approx(19, abs=1)


class TestAssociation:
    def test_aids_assigned_sequentially(self, sim):
        _channel, ap, _server, hosts = make_wifi_cell(sim, n_hosts=3)
        aids = [host.sta.aid for host in hosts]
        assert aids == [1, 2, 3]

    def test_reassociation_keeps_aid(self, sim):
        _channel, ap, _server, hosts = make_wifi_cell(sim)
        sta = hosts[0].sta
        assert ap.associate(sta, 0) == sta.aid

    def test_register_unknown_station_rejected(self, sim):
        from repro.net.addresses import MacAddress

        _channel, ap, _server, _hosts = make_wifi_cell(sim)
        with pytest.raises(ValueError):
            ap.register_station_ip(ip("192.168.1.200"),
                                   MacAddress.from_index(0x99))


class TestRoutingThroughAp:
    def test_wlan_to_wired_round_trip(self, sim):
        _channel, _ap, server, hosts = make_wifi_cell(sim)
        replies = []
        hosts[0].stack.register_ping(4, lambda p: replies.append(sim.now))
        hosts[0].stack.send_echo_request(server.ip_addr, 4, 1)
        sim.run(until=1.0)
        assert len(replies) == 1

    def test_gateway_answers_ping(self, sim):
        _channel, _ap, _server, hosts = make_wifi_cell(sim)
        replies = []
        hosts[0].stack.register_ping(4, lambda p: replies.append(sim.now))
        hosts[0].stack.send_echo_request(ip("192.168.1.1"), 4, 1)
        sim.run(until=1.0)
        assert len(replies) == 1

    def test_ttl_one_dies_at_ap_with_icmp_error(self, sim):
        _channel, ap, server, hosts = make_wifi_cell(sim)
        errors = []
        hosts[0].stack.add_icmp_error_handler(lambda p: errors.append(p))
        received = []
        server.stack.udp_bind(33434, received.append)
        hosts[0].stack.send_udp(server.ip_addr, 33434, payload_size=8, ttl=1)
        sim.run(until=1.0)
        assert received == []
        assert ap.router.packets_expired == 1
        assert len(errors) == 1

    def test_wired_to_wlan_direction(self, sim):
        _channel, _ap, server, hosts = make_wifi_cell(sim)
        got = []
        hosts[0].stack.udp_bind(7070, got.append)
        server.stack.send_udp(hosts[0].ip_addr, 7070, payload_size=16)
        sim.run(until=1.0)
        assert len(got) == 1

    def test_two_stations_communicate_via_ap(self, sim):
        _channel, _ap, _server, hosts = make_wifi_cell(sim, n_hosts=2)
        got = []
        hosts[1].stack.udp_bind(8080, got.append)
        hosts[0].stack.send_udp(hosts[1].ip_addr, 8080, payload_size=16)
        sim.run(until=1.0)
        assert len(got) == 1


class TestPowerSaveBuffering:
    def _dozing_cell(self, sim):
        psm = PsmConfig(enabled=True, timeout=0.05)
        channel, ap, server, hosts = make_wifi_cell(sim, psm=psm)
        sim.run(until=1.0)
        assert hosts[0].sta.power_state == PowerState.DOZE
        return channel, ap, server, hosts[0]

    def test_frames_buffered_while_asleep(self, sim):
        _channel, ap, server, host = self._dozing_cell(sim)
        record = ap.station_record(host.sta.mac)
        host.stack.udp_bind(4444, lambda p: None)
        server.stack.send_udp(host.ip_addr, 4444, payload_size=16)
        # Run only a few ms: before the next beacon the frame sits buffered.
        sim.run(until=sim.now + 0.004)
        assert len(record.buffer) == 1
        assert ap.frames_buffered == 1

    def test_buffer_flushed_on_wake(self, sim):
        _channel, ap, server, host = self._dozing_cell(sim)
        record = ap.station_record(host.sta.mac)
        got = []
        host.stack.udp_bind(4444, got.append)
        for _ in range(3):
            server.stack.send_udp(host.ip_addr, 4444, payload_size=16)
        sim.run(until=sim.now + 0.3)
        assert len(got) == 3
        assert record.buffer == []

    def test_more_data_bit_on_flush(self, sim):
        channel, ap, server, host = self._dozing_cell(sim)
        flushed = []
        channel.add_monitor(
            lambda f, ts, te, st: flushed.append(f.more_data)
            if type(f).__name__ == "DataFrame"
            and f.dst_mac == host.sta.mac else None)
        host.stack.udp_bind(4444, lambda p: None)
        for _ in range(3):
            server.stack.send_udp(host.ip_addr, 4444, payload_size=16)
        sim.run(until=sim.now + 0.3)
        assert flushed == [True, True, False]

    def test_buffer_overflow_drops(self, sim):
        _channel, ap, server, host = self._dozing_cell(sim)
        record = ap.station_record(host.sta.mac)
        host.stack.udp_bind(4444, lambda p: None)
        for _ in range(ap.PS_BUFFER_LIMIT + 10):
            server.stack.send_udp(host.ip_addr, 4444, payload_size=16)
        sim.run(until=sim.now + 0.002)
        assert len(record.buffer) == ap.PS_BUFFER_LIMIT
        assert record.buffered_drops == 10

    def test_awake_station_not_buffered(self, sim):
        psm = PsmConfig(enabled=True, timeout=10.0)  # effectively CAM
        _channel, ap, server, hosts = make_wifi_cell(sim, psm=psm)
        sim.run(until=0.5)
        got = []
        hosts[0].stack.udp_bind(4444, lambda p: got.append(sim.now))
        t0 = sim.now
        server.stack.send_udp(hosts[0].ip_addr, 4444, payload_size=16)
        sim.run(until=t0 + 0.2)
        assert got and got[0] - t0 < 0.01  # no beacon quantisation
        assert ap.frames_buffered == 0
