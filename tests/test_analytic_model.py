"""Hand-computed edge cases for :mod:`repro.analysis.analytic`.

Every expected value here is worked out by hand from the model
equations (docs/ANALYTIC.md), never read back from the simulator —
these tests pin the *model*, ``test_analytic_validation.py`` pins the
simulator against it.
"""

import math

import pytest

from repro.analysis.analytic import (
    ARRIVALS_PERIODIC,
    AnalyticError,
    duty_cycled_throughput,
    predict_for_profile,
    predictive_delay_bound,
    predictive_wake_bound,
    psm_doze_probability,
    psm_listen_period,
    psm_mean_beacon_wait,
    psm_mean_delay,
    saturation_throughput,
    twt_drift_bound,
    twt_effective_throughput,
    twt_mean_delay,
    twt_resync_interval,
    twt_wake_error_bound,
)

BI = 0.1024  # the testbed's 100 TU beacon interval


class TestPsmEdgeCases:
    def test_zero_offered_load_always_dozing(self):
        # load = 0: every probe finds the station asleep, the full
        # beacon wait applies.  E[du] = 0.03 + 1.0 * BI/2 = 0.0812.
        assert psm_doze_probability(0.0, 0.205) == 1.0
        assert psm_mean_delay(0.0, BI, 0.205, base_rtt=0.03) == \
            pytest.approx(0.03 + BI / 2)

    def test_listen_interval_one_doubles_the_wait(self):
        # L = 1: the station hears every 2nd beacon.  Period 2*BI,
        # mean wait BI — exactly double the L=0 case.
        assert psm_listen_period(BI, 1) == pytest.approx(2 * BI)
        assert psm_mean_beacon_wait(BI, 1) == pytest.approx(BI)
        assert psm_mean_beacon_wait(BI, 1) == \
            pytest.approx(2 * psm_mean_beacon_wait(BI, 0))

    def test_degenerate_beacon_interval_rejected(self):
        for bad in (0.0, -0.1024, float("inf"), float("nan")):
            with pytest.raises(AnalyticError):
                psm_mean_beacon_wait(bad, 0)

    def test_degenerate_listen_interval_rejected(self):
        for bad in (-1, 0.5, True, "0"):
            with pytest.raises(AnalyticError):
                psm_listen_period(BI, bad)

    def test_poisson_doze_probability_hand_value(self):
        # load 5/s, Tip 205 ms: exp(-1.025) = 0.35878...
        assert psm_doze_probability(5.0, 0.205) == \
            pytest.approx(math.exp(-1.025))

    def test_periodic_arrivals_are_a_step(self):
        # 1/load > Tip keeps dozing possible; 1/load < Tip pins CAM.
        assert psm_doze_probability(4.0, 0.205, ARRIVALS_PERIODIC) == 1.0
        assert psm_doze_probability(10.0, 0.205, ARRIVALS_PERIODIC) == 0.0

    def test_unknown_arrival_process_rejected(self):
        with pytest.raises(AnalyticError, match="unknown arrival"):
            psm_doze_probability(1.0, 0.205, "martian")

    def test_mean_delay_with_bus_sleep_term(self):
        # load 2/s, Tip 205ms, Tis 50ms, Tprom 10ms, base 30ms, L=0:
        #   P(doze) = exp(-0.41), P(bus) = exp(-0.1)
        #   E[du] = 0.03 + exp(-0.41)*0.0512 + exp(-0.1)*0.010
        expected = (0.03 + math.exp(-0.41) * 0.0512
                    + math.exp(-0.1) * 0.010)
        assert psm_mean_delay(2.0, BI, 0.205, base_rtt=0.03,
                              tis=0.050, tprom=0.010) == \
            pytest.approx(expected)


class TestThroughputEdgeCases:
    def test_single_sta_saturation_hand_value(self):
        # 1500 B at 54 Mbps with 300 us overhead per exchange:
        #   bits = 12000; airtime = 12000/54e6 = 222.2 us
        #   S = 12000 / (522.2 us) = 22.978 Mbps
        bits = 1500 * 8
        expected = bits / (bits / 54e6 + 300e-6)
        assert saturation_throughput(1500, 54e6, 300e-6) == \
            pytest.approx(expected)
        assert saturation_throughput(1500, 54e6, 300e-6) == \
            pytest.approx(22.978e6, rel=1e-3)

    def test_duty_cycle_clamps_at_one(self):
        assert duty_cycled_throughput(20e6, 1.5) == 20e6
        assert duty_cycled_throughput(20e6, 0.25) == 5e6
        assert duty_cycled_throughput(20e6, 0.0) == 0.0

    def test_twt_effective_throughput(self):
        # 20 ms SPs every 500 ms: 4% duty cycle.
        assert twt_effective_throughput(25e6, 0.02, 0.5) == \
            pytest.approx(1e6)

    def test_degenerate_inputs_rejected(self):
        with pytest.raises(AnalyticError):
            saturation_throughput(0, 54e6, 300e-6)
        with pytest.raises(AnalyticError):
            saturation_throughput(1500, 54e6, 0.0)
        with pytest.raises(AnalyticError):
            twt_effective_throughput(25e6, 0.0, 0.5)


class TestTwtModel:
    def test_mean_delay_half_sp_interval(self):
        assert twt_mean_delay(0.5) == pytest.approx(0.25)
        assert twt_mean_delay(0.5, base_rtt=0.03) == pytest.approx(0.28)

    def test_drift_bound_linear(self):
        # 20 ppm for 100 s = 2 ms, sign-independent.
        assert twt_drift_bound(20e-6, 100.0) == pytest.approx(2e-3)
        assert twt_drift_bound(-20e-6, 100.0) == pytest.approx(2e-3)
        assert twt_drift_bound(20e-6, 0.0) == 0.0

    def test_resync_interval_hand_value(self):
        # guard 2 ms at 20 ppm: 100 s of free-running.
        assert twt_resync_interval(20e-6, 2e-3) == pytest.approx(100.0)
        assert twt_resync_interval(0.0, 2e-3) == math.inf

    def test_wake_error_bound_hand_value(self):
        # fraction 0.5, guard 2 ms, drift 100 ppm, SP 0.4 s, BI 0.1024:
        #   bound = 1 ms + 100e-6 * 0.5024 = 1.05024 ms
        assert twt_wake_error_bound(100e-6, 2e-3, 0.4, BI) == \
            pytest.approx(1.05024e-3)

    def test_drift_bound_rejects_non_finite(self):
        with pytest.raises(AnalyticError):
            twt_drift_bound(float("nan"), 1.0)
        with pytest.raises(AnalyticError):
            twt_drift_bound(float("inf"), 1.0)


class TestPredictiveModel:
    def test_wake_bound_is_the_fallback_timeout(self):
        assert predictive_wake_bound(0.4) == 0.4
        with pytest.raises(AnalyticError):
            predictive_wake_bound(0.0)

    def test_delay_bound_hand_values(self):
        # Perfect predictor: just the base RTT.  Coin-flip predictor
        # with 400 ms fallback: base + 200 ms.
        assert predictive_delay_bound(0.0, 0.4, base_rtt=0.03) == \
            pytest.approx(0.03)
        assert predictive_delay_bound(0.5, 0.4, base_rtt=0.03) == \
            pytest.approx(0.23)

    def test_mispredict_rate_domain(self):
        for bad in (-0.1, 1.5, True, "half"):
            with pytest.raises(AnalyticError):
                predictive_delay_bound(bad, 0.4)


class TestProfilePredictions:
    def test_nexus5_idle_prediction_hand_value(self):
        # nexus5: Tip 205 ms, Tis 50 ms, Tprom = broadcom wake mean.
        # Idle (load 0): both sleep probabilities are 1, so
        #   E[du] = base + BI/2 + Tprom.
        prediction = predict_for_profile("nexus5", offered_load=0.0,
                                         base_rtt=0.03)
        assert prediction["psm_doze_probability"] == 1.0
        assert prediction["bus_sleep_probability"] == 1.0
        assert prediction["psm_mean_delay"] == \
            pytest.approx(0.03 + BI / 2 + prediction["tprom"])

    def test_listen_interval_override(self):
        base = predict_for_profile("nexus5")
        doubled = predict_for_profile("nexus5", listen_interval=1)
        assert doubled["psm_mean_beacon_wait"] == \
            pytest.approx(2 * base["psm_mean_beacon_wait"])
