"""System-level invariants under randomized workloads.

These go beyond unit behaviour: they drive whole subsystems with
hypothesis-generated schedules and check the physical/protocol
invariants that must hold regardless of timing.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cellular.rrc import RrcConfig, RrcMachine, RrcState
from repro.net.addresses import MacAddress, ip
from repro.net.packet import Packet, UdpDatagram
from repro.sim.scheduler import Simulator
from repro.wifi.channel import Radio, WifiChannel
from repro.wifi.frames import DataFrame

SLOW = settings(max_examples=25, deadline=None,
                suppress_health_check=[HealthCheck.too_slow])


class _CountingRadio(Radio):
    def __init__(self, sim, channel, mac, name=""):
        super().__init__(sim, channel, mac, name=name)
        self.received = []

    def frame_delivered(self, frame):
        super().frame_delivered(frame)
        self.received.append(frame)


def _frame(src, dst, size):
    packet = Packet(ip("192.168.1.2"), ip("10.0.0.2"),
                    UdpDatagram(1000, 2000, size))
    return DataFrame(dst.mac, src.mac, packet)


class TestDcfInvariants:
    @given(
        seed=st.integers(0, 1000),
        schedule=st.lists(
            st.tuples(
                st.integers(0, 3),            # sender index
                st.floats(0, 0.05),           # enqueue time
                st.integers(0, 1400),         # payload size
            ),
            min_size=1, max_size=40,
        ),
    )
    @SLOW
    def test_no_overlapping_successful_transmissions(self, seed, schedule):
        sim = Simulator(seed=seed)
        channel = WifiChannel(sim, name="fuzz")
        radios = [_CountingRadio(sim, channel, MacAddress.from_index(i + 1))
                  for i in range(4)]
        spans = []
        channel.add_monitor(
            lambda f, ts, te, st_: spans.append((ts, te))
            if st_ == "ok" else None)
        for sender, when, size in schedule:
            dst = radios[(sender + 1) % 4]
            sim.schedule(when, radios[sender].enqueue_frame,
                         _frame(radios[sender], dst, size))
        sim.run(until=5.0)
        spans.sort()
        for (s1, e1), (s2, e2) in zip(spans, spans[1:]):
            assert e1 <= s2 + 1e-12, "two successful frames overlapped"

    @given(
        seed=st.integers(0, 1000),
        n_frames=st.integers(1, 30),
    )
    @SLOW
    def test_conservation_no_silent_loss(self, seed, n_frames):
        # Everything enqueued is eventually delivered or counted dropped.
        sim = Simulator(seed=seed)
        channel = WifiChannel(sim, name="fuzz2")
        a = _CountingRadio(sim, channel, MacAddress.from_index(1))
        b = _CountingRadio(sim, channel, MacAddress.from_index(2))
        accepted = 0
        for index in range(n_frames):
            if a.enqueue_frame(_frame(a, b, index % 800)):
                accepted += 1
        sim.run(until=10.0)
        assert len(b.received) + channel.stats.drops == accepted

    @given(seed=st.integers(0, 500))
    @SLOW
    def test_saturated_pair_shares_channel(self, seed):
        sim = Simulator(seed=seed)
        channel = WifiChannel(sim, name="fair")
        a = _CountingRadio(sim, channel, MacAddress.from_index(1))
        b = _CountingRadio(sim, channel, MacAddress.from_index(2))
        for _ in range(60):
            a.enqueue_frame(_frame(a, b, 1000))
            b.enqueue_frame(_frame(b, a, 1000))
        sim.run(until=2.0)
        delivered_a = len(a.received)
        delivered_b = len(b.received)
        total = delivered_a + delivered_b
        assert total >= 60
        # DCF fairness: neither side starves (within 3:1).
        if total >= 20:
            assert delivered_a >= total / 4
            assert delivered_b >= total / 4


class TestTcpFuzz:
    @given(
        seed=st.integers(0, 300),
        sends=st.lists(st.integers(1, 4000), min_size=1, max_size=10),
        loss=st.floats(0.0, 0.3),
    )
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_byte_conservation_under_loss(self, seed, sends, loss):
        from repro.net.arp import ArpTable
        from repro.net.host import Host
        from repro.net.link import Link
        from repro.net.netem import NetemQdisc
        from repro.net.switch import Switch

        sim = Simulator(seed=seed)
        arp = ArpTable()
        switch = Switch(sim)
        hosts = []
        for index, name in enumerate(("a", "b")):
            host = Host(sim, name, ip(f"10.0.0.{index + 1}"),
                        MacAddress.from_index(index + 1), arp,
                        rng=sim.rng.stream(f"fuzz:{name}"))
            link = Link(sim)
            host.nic.attach_link(link)
            switch.new_port(link)
            hosts.append(host)
        a, b = hosts
        if loss > 0:
            a.netem = NetemQdisc(sim, loss=loss,
                                 rng=sim.rng.stream("fuzz:loss"))
        received = []
        server_conns = []
        b.stack.tcp.listen(80, server_conns.append)
        client = a.stack.tcp.connect(b.ip_addr, 80)
        connected = []
        client.on_connected = lambda c: connected.append(True)
        sim.run(until=30.0)
        if not connected:
            return  # handshake lost beyond the retry budget: acceptable
        server_conns[0].on_data = lambda c, n, m: received.append(n)
        for nbytes in sends:
            client.send(nbytes)
        sim.run(until=120.0)
        if client.state == "CLOSED":
            return  # gave up after MAX_RETRIES: acceptable under loss
        assert sum(received) == sum(sends)
        # In-order, no duplication: receiver counted each byte once.
        assert server_conns[0].bytes_received == sum(sends)


class TestRrcProperties:
    @given(
        seed=st.integers(0, 300),
        touches=st.lists(st.floats(0.1, 30.0), min_size=0, max_size=20),
    )
    @SLOW
    def test_state_always_valid_and_demotions_ordered(self, seed, touches):
        sim = Simulator(seed=seed)
        machine = RrcMachine(sim, config=RrcConfig(t1=2.0, t2=5.0),
                             rng=sim.rng.stream("rrc"))
        machine.request_channel(100, lambda: None)
        for when in touches:
            sim.schedule(when, machine.touch)
        sim.run(until=60.0)
        valid = {RrcState.IDLE, RrcState.FACH, RrcState.DCH}
        transitions = machine.state_transitions
        assert all(old in valid and new in valid
                   for _t, old, new, _r in transitions)
        # Demotions only ever step down one level at a time.
        for _t, old, new, reason in transitions:
            if reason.startswith("t"):
                assert (old, new) in ((RrcState.DCH, RrcState.FACH),
                                      (RrcState.FACH, RrcState.IDLE))
        # With all activity finished, the machine ends IDLE.
        assert machine.state == RrcState.IDLE

    @given(seed=st.integers(0, 300),
           requests=st.integers(1, 10))
    @SLOW
    def test_every_channel_request_eventually_granted(self, seed, requests):
        sim = Simulator(seed=seed)
        machine = RrcMachine(sim, rng=sim.rng.stream("rrc"))
        granted = []
        for index in range(requests):
            sim.schedule(index * 0.5,
                         lambda i=index: machine.request_channel(
                             1000, lambda: granted.append(i)))
        sim.run(until=60.0)
        assert sorted(granted) == list(range(requests))
