"""Unit tests for the discrete-event scheduler."""

import pytest

from repro.sim.errors import SchedulerError, SimTimeError
from repro.sim.scheduler import Simulator


class TestScheduling:
    def test_clock_starts_at_zero(self, sim):
        assert sim.now == 0.0

    def test_events_fire_in_time_order(self, sim):
        order = []
        sim.schedule(0.3, order.append, "c")
        sim.schedule(0.1, order.append, "a")
        sim.schedule(0.2, order.append, "b")
        sim.run()
        assert order == ["a", "b", "c"]

    def test_same_time_events_fire_in_scheduling_order(self, sim):
        order = []
        for tag in range(10):
            sim.schedule(0.5, order.append, tag)
        sim.run()
        assert order == list(range(10))

    def test_clock_advances_to_event_time(self, sim):
        seen = []
        sim.schedule(1.25, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [1.25]

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SimTimeError):
            sim.schedule(-0.1, lambda: None)

    def test_scheduling_in_the_past_rejected(self, sim):
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(SimTimeError):
            sim.at(0.5, lambda: None)

    def test_call_soon_runs_after_pending_same_time_events(self, sim):
        order = []
        sim.schedule(0.0, order.append, "first")
        sim.call_soon(order.append, "second")
        sim.run()
        assert order == ["first", "second"]

    def test_kwargs_passed_through(self, sim):
        result = {}
        sim.schedule(0.1, result.update, status="done")
        sim.run()
        assert result == {"status": "done"}


class TestRunControl:
    def test_run_until_stops_before_later_events(self, sim):
        fired = []
        sim.schedule(1.0, fired.append, 1)
        sim.schedule(2.0, fired.append, 2)
        sim.run(until=1.5)
        assert fired == [1]
        assert sim.now == 1.5

    def test_run_until_advances_clock_on_empty_heap(self, sim):
        sim.run(until=3.0)
        assert sim.now == 3.0

    def test_pending_event_survives_partial_run(self, sim):
        fired = []
        sim.schedule(2.0, fired.append, 2)
        sim.run(until=1.0)
        assert sim.pending() == 1
        sim.run()
        assert fired == [2]

    def test_stop_halts_run(self, sim):
        fired = []
        sim.schedule(0.1, fired.append, 1)
        sim.schedule(0.2, sim.stop)
        sim.schedule(0.3, fired.append, 3)
        sim.run()
        assert fired == [1]
        assert sim.pending() == 1

    def test_run_is_not_reentrant(self, sim):
        def nested():
            with pytest.raises(SchedulerError):
                sim.run()

        sim.schedule(0.1, nested)
        sim.run()

    def test_step_returns_false_when_empty(self, sim):
        assert sim.step() is False

    def test_events_fired_counter(self, sim):
        for _ in range(5):
            sim.schedule(0.1, lambda: None)
        sim.run()
        assert sim.events_fired == 5


class TestUntilBoundary:
    """run(until=...) is inclusive: events at exactly ``until`` fire."""

    def test_event_at_exactly_until_fires(self, sim):
        fired = []
        sim.at(1.0, fired.append, "boundary")
        sim.run(until=1.0)
        assert fired == ["boundary"]
        assert sim.now == 1.0

    def test_same_instant_followups_at_until_also_fire(self, sim):
        fired = []

        def boundary():
            fired.append("first")
            sim.call_soon(fired.append, "second")

        sim.at(1.0, boundary)
        sim.run(until=1.0)
        assert fired == ["first", "second"]
        assert sim.pending() == 0

    def test_event_just_past_until_stays_pending(self, sim):
        fired = []
        sim.at(1.0, fired.append, "in")
        sim.at(1.0 + 1e-9, fired.append, "out")
        sim.run(until=1.0)
        assert fired == ["in"]
        assert sim.pending() == 1
        assert sim.now == 1.0

    def test_clock_never_passes_until(self, sim):
        sim.at(0.25, lambda: None)
        assert sim.run(until=2.0) == 2.0
        assert sim.now == 2.0


class TestPendingAccounting:
    """pending() is O(1) bookkeeping, so pin its edge cases."""

    def test_pending_counts_only_live_events(self, sim):
        events = [sim.schedule(0.1 * i, lambda: None) for i in range(1, 6)]
        assert sim.pending() == 5
        events[0].cancel()
        events[3].cancel()
        assert sim.pending() == 3

    def test_cancel_after_fire_does_not_corrupt_count(self, sim):
        event = sim.schedule(0.1, lambda: None)
        keep = sim.schedule(0.2, lambda: None)
        sim.run(until=0.15)
        event.cancel()  # already fired: harmless no-op
        assert sim.pending() == 1
        keep.cancel()
        assert sim.pending() == 0

    def test_double_cancel_counts_once(self, sim):
        event = sim.schedule(0.5, lambda: None)
        event.cancel()
        event.cancel()
        assert sim.pending() == 0

    def test_pending_drains_through_run(self, sim):
        canceled = sim.schedule(0.1, lambda: None)
        sim.schedule(0.2, lambda: None)
        canceled.cancel()
        sim.run()
        assert sim.pending() == 0
        assert sim.events_fired == 1

    def test_step_discards_cancelled_then_fires_live(self, sim):
        fired = []
        dead = sim.schedule(0.1, fired.append, "dead")
        sim.schedule(0.2, fired.append, "live")
        dead.cancel()
        assert sim.step() is True
        assert fired == ["live"]
        assert sim.pending() == 0


class TestCancellation:
    def test_cancelled_event_does_not_fire(self, sim):
        fired = []
        event = sim.schedule(0.5, fired.append, 1)
        event.cancel()
        sim.run()
        assert fired == []

    def test_cancel_is_idempotent(self, sim):
        event = sim.schedule(0.5, lambda: None)
        event.cancel()
        event.cancel()
        sim.run()

    def test_cancelled_events_not_counted_pending(self, sim):
        keep = sim.schedule(0.5, lambda: None)
        drop = sim.schedule(0.6, lambda: None)
        drop.cancel()
        assert sim.pending() == 1
        assert keep is not drop

    def test_peek_skips_cancelled_head(self, sim):
        first = sim.schedule(0.1, lambda: None)
        sim.schedule(0.2, lambda: None)
        first.cancel()
        assert sim.peek() == 0.2


class TestDeterminism:
    def test_same_seed_same_stream_draws(self):
        def draws(seed):
            sim = Simulator(seed=seed)
            stream = sim.rng.stream("x")
            return [stream.random() for _ in range(10)]

        assert draws(7) == draws(7)
        assert draws(7) != draws(8)

    def test_event_ordering_deterministic_across_runs(self):
        def trace(seed):
            sim = Simulator(seed=seed)
            log = []
            for i in range(20):
                delay = sim.rng.stream("delays").uniform(0, 1)
                sim.schedule(delay, log.append, i)
            sim.run()
            return log

        assert trace(3) == trace(3)
