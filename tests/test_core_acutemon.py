"""Tests for AcuteMon itself (§4.1-§4.2)."""

import pytest

from repro.core.acutemon import AcuteMon, AcuteMonConfig
from repro.core.measurement import ProbeCollector
from repro.testbed.topology import Testbed


def build(seed=31, rtt=0.03, phone_key="nexus5", **phone_kwargs):
    testbed = Testbed(seed=seed, emulated_rtt=rtt)
    phone = testbed.add_phone(phone_key, **phone_kwargs)
    collector = ProbeCollector(phone)
    testbed.settle(0.5)
    return testbed, phone, collector


def run_acutemon(testbed, phone, collector, **config_kwargs):
    config = AcuteMonConfig(**config_kwargs)
    monitor = AcuteMon(phone, collector, testbed.server_ip, config=config)
    done = []
    monitor.start(on_complete=lambda r: done.append(r))
    while not done:
        assert testbed.sim.step(), "AcuteMon stalled"
    return monitor


class TestConfig:
    def test_method_validated(self):
        with pytest.raises(ValueError):
            AcuteMonConfig(probe_method="quic")

    def test_positive_parameters_required(self):
        with pytest.raises(ValueError):
            AcuteMonConfig(probe_count=0)
        with pytest.raises(ValueError):
            AcuteMonConfig(dpre=0)

    def test_defaults_match_paper(self):
        config = AcuteMonConfig()
        assert config.dpre == pytest.approx(0.020)
        assert config.db == pytest.approx(0.020)
        assert config.probe_count == 100
        assert config.warmup_ttl == 1


class TestMeasurementPhase:
    def test_collects_k_probes(self):
        testbed, phone, collector = build()
        monitor = run_acutemon(testbed, phone, collector, probe_count=20)
        assert len(monitor.results) == 20
        assert monitor.loss_count() == 0

    def test_rtts_close_to_emulated(self):
        testbed, phone, collector = build(rtt=0.05)
        monitor = run_acutemon(testbed, phone, collector, probe_count=20)
        for rtt in monitor.rtts():
            assert 0.050 < rtt < 0.058

    @pytest.mark.parametrize("method", ["tcp_syn", "http", "icmp", "udp"])
    def test_all_probe_methods_work(self, method):
        testbed, phone, collector = build()
        monitor = run_acutemon(testbed, phone, collector, probe_count=10,
                               probe_method=method)
        assert len(monitor.rtts()) == 10
        for rtt in monitor.rtts():
            assert 0.029 < rtt < 0.040

    def test_overheads_small_and_rtt_independent(self):
        # The paper's headline: median overhead < 3 ms at any nRTT.
        medians = []
        for rtt in (0.020, 0.135):
            testbed, phone, collector = build(rtt=rtt, seed=77)
            run_acutemon(testbed, phone, collector, probe_count=30)
            from repro.core.overhead import decompose

            overheads = decompose(collector.completed())
            medians.append(overheads.box("total").median)
        assert all(m < 0.003 for m in medians)
        assert abs(medians[0] - medians[1]) < 0.002

    def test_enforces_native_runtime(self):
        testbed, phone, collector = build()
        phone.runtime = "dalvik"
        run_acutemon(testbed, phone, collector, probe_count=5)
        assert phone.runtime == "native"


class TestBackgroundThread:
    def test_warmup_and_background_sent(self):
        testbed, phone, collector = build()
        monitor = run_acutemon(testbed, phone, collector, probe_count=20)
        assert monitor.warmups_sent == 1
        assert monitor.background_sent > 0
        assert len(collector.records("background")) == monitor.background_sent

    def test_background_stops_after_measurement(self):
        testbed, phone, collector = build()
        monitor = run_acutemon(testbed, phone, collector, probe_count=5)
        sent = monitor.background_sent
        testbed.run(1.0)
        assert monitor.background_sent == sent

    def test_background_packets_die_at_first_hop(self):
        testbed, phone, collector = build()
        expired_before = testbed.ap.router.packets_expired
        server_drops_before = testbed.server_host.stack.packets_dropped
        monitor = run_acutemon(testbed, phone, collector, probe_count=10)
        total_bg = monitor.warmups_sent + monitor.background_sent
        assert testbed.ap.router.packets_expired - expired_before == total_bg
        # Nothing background-ish reached the server.
        assert testbed.server_host.stack.packets_dropped == server_drops_before

    def test_phone_stays_awake_during_measurement(self):
        testbed, phone, collector = build(phone_key="nexus4")  # Tip 40 ms
        run_acutemon(testbed, phone, collector, probe_count=30,
                     probe_gap=0.05)
        # No doze transition while AcuteMon was probing.
        doze_times = [t for t, _o, new, _r in phone.sta.state_transitions
                      if new == "DOZE" and t > 0.5]
        assert doze_times == []

    def test_bus_never_sleeps_during_measurement(self):
        testbed, phone, collector = build()
        sleeps_before = phone.driver.bus.sleep_count
        run_acutemon(testbed, phone, collector, probe_count=30,
                     probe_gap=0.03)
        assert phone.driver.bus.sleep_count == sleeps_before

    def test_background_disabled_lets_phone_demote(self):
        testbed, phone, collector = build(phone_key="nexus4")
        sleeps_before = phone.driver.bus.sleep_count
        run_acutemon(testbed, phone, collector, probe_count=10,
                     probe_gap=0.2, background_enabled=False,
                     warmup_enabled=False)
        # With probes 200 ms apart and no background traffic, the WCN bus
        # (Tis = 25 ms) demotes repeatedly.
        assert phone.driver.bus.sleep_count > sleeps_before

    def test_icmp_errors_ignored(self):
        # AcuteMon must not crash or mis-count on time-exceeded responses.
        testbed, phone, collector = build()
        errors = []
        phone.stack.add_icmp_error_handler(errors.append)
        monitor = run_acutemon(testbed, phone, collector, probe_count=10)
        assert len(errors) >= monitor.warmups_sent  # errors did arrive
        assert len(monitor.rtts()) == 10  # ...and changed nothing


class TestRobustness:
    def test_cannot_start_twice(self):
        testbed, phone, collector = build()
        config = AcuteMonConfig(probe_count=5)
        monitor = AcuteMon(phone, collector, testbed.server_ip, config=config)
        monitor.start()
        with pytest.raises(RuntimeError):
            monitor.start()

    def test_probe_timeout_counted_as_loss(self):
        testbed, phone, collector = build()
        # Measure against an address that is routed but never answers.
        from repro.net.addresses import ip

        config = AcuteMonConfig(probe_count=3, probe_timeout=0.2,
                                probe_method="udp")
        monitor = AcuteMon(phone, collector, ip("10.0.0.99"), config=config)
        done = []
        monitor.start(on_complete=lambda r: done.append(r))
        while not done:
            assert testbed.sim.step()
        assert monitor.loss_count() == 3
        assert monitor.rtts() == []
