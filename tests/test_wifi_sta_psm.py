"""Tests for the station's adaptive power-save state machine (§3.2.2)."""

import pytest

from repro.net.addresses import ip
from repro.sim.units import tu
from repro.wifi.sta import PowerState, PsmConfig
from tests.conftest import make_wifi_cell, run_until


def make_psm_host(sim, timeout=0.1, jitter=0.0, listen_interval=0):
    psm = PsmConfig(enabled=True, timeout=timeout, timeout_jitter=jitter,
                    listen_interval=listen_interval)
    channel, ap, server, hosts = make_wifi_cell(sim, psm=psm)
    return channel, ap, server, hosts[0]


class TestPsmEntry:
    def test_station_dozes_after_timeout(self, sim):
        _channel, _ap, _server, host = make_psm_host(sim, timeout=0.1)
        # Some initial activity, then silence.
        host.stack.send_echo_request(ip("10.0.0.2"), 1, 1)
        sim.run(until=1.0)
        assert host.sta.power_state == PowerState.DOZE
        assert host.sta.doze_count >= 1

    def test_doze_announced_with_pm_null_frame(self, sim):
        channel, _ap, _server, host = make_psm_host(sim, timeout=0.1)
        nulls = []
        channel.add_monitor(
            lambda f, ts, te, st: nulls.append((ts, f))
            if type(f).__name__ == "NullDataFrame" else None)
        host.stack.send_echo_request(ip("10.0.0.2"), 1, 1)
        sim.run(until=1.0)
        pm_nulls = [f for _, f in nulls if f.pm]
        assert pm_nulls, "doze must be announced with a PM=1 null frame"

    def test_timeout_measured_from_last_activity(self, sim):
        channel, _ap, _server, host = make_psm_host(sim, timeout=0.1)
        host.stack.send_echo_request(ip("10.0.0.2"), 1, 1)
        sim.run(until=0.3)
        transitions = [t for t in host.sta.state_transitions
                       if t[2] == PowerState.DOZE]
        assert transitions
        doze_time = transitions[0][0]
        # The reply comes back ~1 ms in; doze follows Tip later (+ null tx).
        assert 0.1 < doze_time < 0.13

    def test_disabled_psm_stays_awake(self, sim):
        psm = PsmConfig.disabled()
        _channel, _ap, _server, hosts = make_wifi_cell(sim, psm=psm)
        hosts[0].stack.send_echo_request(ip("10.0.0.2"), 1, 1)
        sim.run(until=2.0)
        assert hosts[0].sta.power_state == PowerState.AWAKE
        assert hosts[0].sta.doze_count == 0

    def test_steady_traffic_prevents_doze(self, sim):
        _channel, _ap, _server, host = make_psm_host(sim, timeout=0.1)

        def send(i):
            host.stack.send_echo_request(ip("10.0.0.2"), 1, i)

        for i in range(40):
            sim.schedule(0.05 * i, send, i)
        sim.run(until=1.9)
        assert host.sta.doze_count == 0

    def test_jittered_timeout_varies(self, sim):
        _channel, _ap, _server, host = make_psm_host(
            sim, timeout=0.1, jitter=0.03)
        for i in range(8):
            sim.schedule(1.0 * i, host.stack.send_echo_request,
                         ip("10.0.0.2"), 1, i)
        sim.run(until=8.5)
        doze_times = [t for t, _old, new, _r in host.sta.state_transitions
                      if new == PowerState.DOZE]
        assert len(doze_times) >= 4
        # Idle-to-doze gaps differ across cycles thanks to jitter.
        wake_times = [t for t, _old, new, _r in host.sta.state_transitions
                      if new == PowerState.AWAKE]
        gaps = set()
        for doze in doze_times:
            preceding = max((w for w in wake_times if w < doze), default=None)
            if preceding is not None:
                gaps.add(round(doze - preceding, 3))
        assert len(gaps) > 1


class TestUplinkWake:
    def test_uplink_send_wakes_immediately(self, sim):
        _channel, _ap, _server, host = make_psm_host(sim, timeout=0.1)
        host.stack.send_echo_request(ip("10.0.0.2"), 1, 1)
        sim.run(until=1.0)
        assert host.sta.power_state == PowerState.DOZE
        host.stack.send_echo_request(ip("10.0.0.2"), 1, 2)
        # The wake is synchronous with the send call.
        assert host.sta.power_state == PowerState.AWAKE

    def test_reply_received_when_rtt_below_timeout(self, sim):
        _channel, _ap, _server, host = make_psm_host(sim, timeout=0.2)
        replies = []
        host.stack.register_ping(9, lambda p: replies.append(sim.now))
        for i in range(3):
            sim.schedule(1.0 * i + 1.0, host.stack.send_echo_request,
                         ip("10.0.0.2"), 9, i)
        sim.run(until=4.0)
        assert len(replies) == 3


class TestDownlinkBuffering:
    def test_downlink_to_dozing_station_waits_for_beacon(self, sim):
        channel, ap, server, host = make_psm_host(sim, timeout=0.05)
        sim.run(until=1.0)  # host is dozing
        assert host.sta.power_state == PowerState.DOZE
        arrivals = []
        host.stack.udp_bind(4444, lambda p: arrivals.append(sim.now))
        send_time = sim.now
        server.stack.send_udp(host.ip_addr, 4444, payload_size=32)
        sim.run(until=send_time + 0.5)
        assert len(arrivals) == 1
        wait = arrivals[0] - send_time
        # Must be beacon-quantised: arrival only after the next TBTT.
        beacon_interval = tu(ap.beacon_interval_tu)
        next_tbtt = (int(send_time / beacon_interval) + 1) * beacon_interval
        assert arrivals[0] >= next_tbtt
        assert wait <= beacon_interval + 0.02

    def test_tim_bit_set_while_buffered(self, sim):
        channel, ap, _server, host = make_psm_host(sim, timeout=0.05)
        sim.run(until=1.0)
        record = ap.station_record(host.sta.mac)
        assert record.asleep
        tims = []
        channel.add_monitor(
            lambda f, ts, te, st: tims.append(f.tim_aids)
            if type(f).__name__ == "BeaconFrame" else None)
        _server = _server  # unused
        # Queue a downlink frame while dozing.
        ap.router.stack.send_echo_request(host.ip_addr, 3, 1)
        run_until(sim, lambda: len(tims) >= 1, sim.now + 0.3)
        assert any(host.sta.aid in aids for aids in tims)

    def test_station_fetches_with_pm0_null(self, sim):
        channel, _ap, server, host = make_psm_host(sim, timeout=0.05)
        sim.run(until=1.0)
        fetches = []
        channel.add_monitor(
            lambda f, ts, te, st: fetches.append(f)
            if type(f).__name__ == "NullDataFrame" and not f.pm else None)
        host.stack.udp_bind(4444, lambda p: None)
        server.stack.send_udp(host.ip_addr, 4444, payload_size=32)
        sim.run(until=sim.now + 0.3)
        assert fetches, "buffered delivery must be triggered by a PM=0 null"

    def test_station_redozes_after_fetch(self, sim):
        _channel, _ap, server, host = make_psm_host(sim, timeout=0.05)
        host.stack.udp_bind(4444, lambda p: None)
        sim.run(until=1.0)
        dozes_before = host.sta.doze_count
        server.stack.send_udp(host.ip_addr, 4444, payload_size=32)
        sim.run(until=sim.now + 1.0)
        assert host.sta.doze_count > dozes_before

    def test_listen_interval_skips_beacons(self, sim):
        # L=2: the station only listens to every third beacon, so worst-case
        # buffering delay grows accordingly.
        _channel, ap, server, host = make_psm_host(
            sim, timeout=0.05, listen_interval=2)
        sim.run(until=1.0)
        arrivals = []
        host.stack.udp_bind(4444, lambda p: arrivals.append(sim.now))
        send_time = sim.now
        server.stack.send_udp(host.ip_addr, 4444, payload_size=32)
        sim.run(until=send_time + 1.0)
        assert len(arrivals) == 1
        beacon_interval = tu(ap.beacon_interval_tu)
        # Delivery lands on a TBTT whose index is a multiple of L+1 = 3.
        index = round(arrivals[0] / beacon_interval)
        assert index % 3 <= 0 or arrivals[0] - send_time <= 3 * beacon_interval + 0.02


class TestInstrumentation:
    def test_state_transitions_recorded(self, sim):
        _channel, _ap, _server, host = make_psm_host(sim, timeout=0.05)
        host.stack.send_echo_request(ip("10.0.0.2"), 1, 1)
        sim.run(until=1.0)
        states = [(old, new) for _t, old, new, _r in host.sta.state_transitions]
        assert (PowerState.AWAKE, PowerState.DOZE) in states

    def test_on_state_change_callback(self, sim):
        _channel, _ap, _server, host = make_psm_host(sim, timeout=0.05)
        changes = []
        host.sta.on_state_change = lambda old, new, reason: changes.append(reason)
        host.stack.send_echo_request(ip("10.0.0.2"), 1, 1)
        sim.run(until=1.0)
        assert "psm-timeout" in changes

    def test_psm_config_validation(self):
        with pytest.raises(ValueError):
            PsmConfig(timeout=0)
        with pytest.raises(ValueError):
            PsmConfig(timeout=0.1, listen_interval=-1)
