"""Tests for the automatic calibrate-plan-measure-correct pipeline."""

import statistics

import pytest

from repro.core.auto import AutoAcuteMon
from repro.core.measurement import ProbeCollector
from repro.testbed.topology import Testbed


def build(phone_key="nexus5", seed=81, rtt=0.0, **testbed_kwargs):
    testbed = Testbed(seed=seed, emulated_rtt=rtt, **testbed_kwargs)
    phone = testbed.add_phone(phone_key)
    collector = ProbeCollector(phone)
    testbed.settle(0.5)
    return testbed, phone, collector


class TestAutoPipeline:
    def test_calibrate_produces_valid_plan(self):
        testbed, phone, collector = build()
        auto = AutoAcuteMon(phone, collector, testbed.server_ip)
        plan = auto.calibrate()
        assert plan.valid
        # The derived plan respects the phone's real timers.
        assert plan.dpre > phone.driver.chipset.wake_delay.low
        assert plan.db < phone.profile.sdio_idle_window + 0.05

    def test_measure_unknown_phone_end_to_end(self):
        # The pipeline never reads the profile: it measures what it needs.
        # Calibration runs against the near path; the target is then 60 ms.
        testbed, phone, collector = build("galaxy_grand", seed=82)
        auto = AutoAcuteMon(phone, collector, testbed.server_ip)
        auto.calibrate()
        testbed.set_emulated_rtt(0.060)
        result = auto.measure(probe_count=30)
        assert len(result.raw_rtts) == 30
        raw_median = statistics.median(result.raw_rtts)
        corrected_median = statistics.median(result.corrected_rtts)
        assert abs(raw_median - 0.060) < 0.008
        # Correction brings the estimate closer to the truth.
        assert abs(corrected_median - 0.060) < abs(raw_median - 0.060)
        assert abs(corrected_median - 0.060) < 1.5e-3

    def test_measure_without_calibrate_calibrates_first(self):
        testbed, phone, collector = build(seed=83, rtt=0.030)
        auto = AutoAcuteMon(phone, collector, testbed.server_ip)
        result = auto.measure(probe_count=10)
        assert auto.plan is not None and auto.plan.valid
        assert len(result.raw_rtts) == 10

    def test_far_reference_rejected(self):
        # Timer training against a 90 ms path must refuse loudly rather
        # than learn garbage (the ping2 failure mode).
        testbed, phone, collector = build(seed=87, rtt=0.090)
        auto = AutoAcuteMon(phone, collector, testbed.server_ip)
        with pytest.raises(RuntimeError, match="too long"):
            auto.calibrate()

    def test_overhead_transfers_across_paths(self):
        # Calibrate + train on one path, then re-measure another.
        testbed, phone, collector = build(seed=84, rtt=0.020)
        auto = AutoAcuteMon(phone, collector, testbed.server_ip)
        auto.measure(probe_count=30)
        testbed.set_emulated_rtt(0.110)
        second = auto.measure(probe_count=30, train_overhead=False)
        corrected_median = statistics.median(second.corrected_rtts)
        assert abs(corrected_median - 0.110) < 1.5e-3


class TestTestbedPathKnobs:
    def test_rtt_jitter_spreads_measurements(self):
        from repro.testbed.experiments import acutemon_experiment

        testbed, phone, collector = build(seed=85, rtt=0.030,
                                          rtt_jitter=0.005)
        auto = AutoAcuteMon(phone, collector, testbed.server_ip)
        result = auto.measure(probe_count=30)
        spread = max(result.raw_rtts) - min(result.raw_rtts)
        assert spread > 0.004  # jitter dominates the usual ~1 ms spread

    def test_path_loss_costs_probes_or_retransmits(self):
        testbed, phone, collector = build(seed=86, rtt=0.030,
                                          path_loss=0.2)
        auto = AutoAcuteMon(phone, collector, testbed.server_ip)
        result = auto.measure(probe_count=15, probe_method="icmp",
                              probe_timeout=0.3)
        # ICMP probes have no retransmission: ~20% simply vanish.
        assert len(result.raw_rtts) < 15
