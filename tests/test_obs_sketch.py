"""Property and unit tests for the DDSketch quantile sketch.

The sketch underwrites two repo-level guarantees (docs/OBSERVABILITY.md):

* every reported percentile is within the configured *relative* error
  ``alpha`` of the exact sample quantile (same rank definition), and
* merging is **exact** — folding shard sketches in any partition and
  any order reproduces the whole-stream sketch bin-for-bin, which is
  what makes campaign percentiles bit-identical across serial, parallel
  and resumed runs.
"""

import json
import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.obs.sketch import (
    DDSketch,
    DEFAULT_ALPHA,
    MIN_TRACKED_VALUE,
    merge_payloads,
    payload_quantile,
)

values = st.floats(min_value=1e-9, max_value=1e4,
                   allow_nan=False, allow_infinity=False)
quantiles = st.floats(min_value=0.0, max_value=1.0,
                      allow_nan=False, allow_infinity=False)


def exact_quantile(samples, q):
    """The sketch's rank definition applied to the raw samples."""
    ordered = sorted(samples)
    rank = max(1, math.ceil(q * len(ordered)))
    return ordered[rank - 1]


class TestBasics:
    def test_empty_sketch(self):
        sketch = DDSketch()
        assert sketch.count == 0
        assert sketch.quantile(0.5) is None

    def test_single_value_round_trips_within_alpha(self):
        sketch = DDSketch()
        sketch.add(0.05)
        assert sketch.count == 1
        assert sketch.quantile(0.5) == pytest.approx(0.05, rel=DEFAULT_ALPHA)

    def test_zero_and_negative_values_hit_zero_bucket(self):
        sketch = DDSketch()
        sketch.add(0.0)
        sketch.add(-1.0)
        sketch.add(MIN_TRACKED_VALUE / 2)
        assert sketch.count == 3
        assert sketch.quantile(0.5) == 0.0
        assert sketch.quantile(1.0) == 0.0

    def test_quantile_bounds_checked(self):
        sketch = DDSketch()
        sketch.add(1.0)
        with pytest.raises(ValueError):
            sketch.quantile(1.5)
        with pytest.raises(ValueError):
            sketch.quantile(-0.1)

    def test_alpha_mismatch_rejected(self):
        with pytest.raises(ValueError):
            DDSketch(alpha=0.01).merge(DDSketch(alpha=0.02))
        a = DDSketch(alpha=0.01)
        b = DDSketch(alpha=0.02)
        a.add(1.0)
        b.add(1.0)
        with pytest.raises(ValueError):
            merge_payloads(a.payload(), b.payload())

    def test_weighted_add(self):
        sketch = DDSketch()
        sketch.add(0.01, count=99)
        sketch.add(1.0)
        assert sketch.count == 100
        assert sketch.quantile(0.5) == pytest.approx(0.01, rel=DEFAULT_ALPHA)
        assert sketch.quantile(1.0) == pytest.approx(1.0, rel=DEFAULT_ALPHA)

    def test_payload_json_round_trip_is_lossless(self):
        sketch = DDSketch()
        for value in (1e-6, 0.0333, 5.0, 0.0, 1e3):
            sketch.add(value)
        wire = json.loads(json.dumps(sketch.payload()))
        clone = DDSketch.from_payload(wire)
        assert clone.payload() == sketch.payload()
        assert clone.quantile(0.5) == sketch.quantile(0.5)


class TestRelativeErrorProperty:
    @given(samples=st.lists(values, min_size=1, max_size=300),
           q=quantiles)
    def test_quantile_within_alpha_of_exact(self, samples, q):
        sketch = DDSketch()
        for value in samples:
            sketch.add(value)
        estimate = sketch.quantile(q)
        exact = exact_quantile(samples, q)
        assert abs(estimate - exact) <= DEFAULT_ALPHA * exact

    @given(samples=st.lists(values, min_size=1, max_size=100))
    def test_extremes_within_alpha(self, samples):
        sketch = DDSketch()
        for value in samples:
            sketch.add(value)
        assert sketch.quantile(0.0) == pytest.approx(min(samples),
                                                     rel=DEFAULT_ALPHA)
        assert sketch.quantile(1.0) == pytest.approx(max(samples),
                                                     rel=DEFAULT_ALPHA)


class TestMergeExactness:
    @given(samples=st.lists(values, min_size=1, max_size=200),
           data=st.data())
    def test_merge_of_any_partition_equals_whole(self, samples, data):
        cuts = sorted(data.draw(st.lists(
            st.integers(min_value=0, max_value=len(samples)), max_size=5)))
        shards, last = [], 0
        for cut in cuts + [len(samples)]:
            shards.append(samples[last:cut])
            last = cut
        whole = DDSketch()
        for value in samples:
            whole.add(value)
        merged = DDSketch()
        for shard in shards:
            sketch = DDSketch()
            for value in shard:
                sketch.add(value)
            merged.merge(sketch)
        # Bin-for-bin identity, not approximation: integer counts sum.
        assert merged.payload() == whole.payload()

    @given(samples=st.lists(values, min_size=2, max_size=60))
    def test_payload_merge_matches_object_merge(self, samples):
        half = len(samples) // 2
        a, b = DDSketch(), DDSketch()
        for value in samples[:half]:
            a.add(value)
        for value in samples[half:]:
            b.add(value)
        merged_payload = merge_payloads(a.payload(), b.payload())
        a.merge(b)
        assert merged_payload == a.payload()
        for q in (0.0, 0.5, 0.95, 1.0):
            assert payload_quantile(merged_payload, q) == a.quantile(q)

    def test_merge_payloads_does_not_mutate_inputs(self):
        a, b = DDSketch(), DDSketch()
        a.add(1.0)
        b.add(2.0)
        pa, pb = a.payload(), b.payload()
        before = (json.dumps(pa, sort_keys=True),
                  json.dumps(pb, sort_keys=True))
        merge_payloads(pa, pb)
        assert (json.dumps(pa, sort_keys=True),
                json.dumps(pb, sort_keys=True)) == before
