"""Tests for timer inference (the paper's future-work training, §4.1)."""

import pytest

from repro.core.calibration import CalibrationResult, TimerCalibrator
from repro.core.measurement import ProbeCollector
from repro.core.warmup import WarmupPolicy
from repro.testbed.topology import Testbed


def build(phone_key="nexus5", seed=51):
    testbed = Testbed(seed=seed, emulated_rtt=0.0)
    phone = testbed.add_phone(phone_key)
    collector = ProbeCollector(phone)
    testbed.settle(0.5)
    calibrator = TimerCalibrator(phone, collector, testbed.server_ip)
    return testbed, phone, calibrator


class TestCalibrationResult:
    def test_merge_later_values_win(self):
        first = CalibrationResult(t_is=0.05, details={"a": 1})
        second = CalibrationResult(t_ip=0.2, details={"b": 2})
        merged = first.merged_with(second)
        assert merged.t_is == 0.05 and merged.t_ip == 0.2
        assert merged.details == {"a": 1, "b": 2}

    def test_repr_handles_missing(self):
        assert "?" in repr(CalibrationResult())


class TestSdioInference:
    def test_nexus5_tis_recovered(self):
        _testbed, phone, calibrator = build("nexus5")
        result = calibrator.infer_sdio(
            gaps=[g * 1e-3 for g in range(20, 95, 10)], repeats=3)
        # True Tis is 50 ms; the ramp has 10 ms resolution.
        assert result.t_is is not None
        assert 0.045 <= result.t_is <= 0.075

    def test_nexus5_tprom_magnitude(self):
        _testbed, phone, calibrator = build("nexus5")
        result = calibrator.infer_sdio(
            gaps=[0.02, 0.03, 0.07, 0.08, 0.09], repeats=4)
        assert result.t_prom is not None
        # BCM4339 wake is ~8.5-13.5 ms.
        assert 0.006 < result.t_prom < 0.018

    def test_qualcomm_shorter_window_detected(self):
        _testbed, phone, calibrator = build("nexus4")
        result = calibrator.infer_sdio(
            gaps=[g * 1e-3 for g in range(10, 65, 5)], repeats=4)
        assert result.t_is is not None
        assert result.t_is <= 0.040  # true value 25 ms

    def test_calibration_feeds_warmup_policy(self):
        _testbed, phone, calibrator = build("nexus5")
        result = calibrator.infer_sdio(
            gaps=[0.02, 0.04, 0.06, 0.08], repeats=3)
        result = result.merged_with(CalibrationResult(t_ip=0.205))
        policy = WarmupPolicy.from_calibration(result)
        plan = policy.recommend()
        assert plan.valid


class TestPsmInference:
    def test_nexus5_tip_recovered_by_probing(self):
        _testbed, phone, calibrator = build("nexus5")
        result = calibrator.infer_psm(
            delays=[d * 1e-3 for d in range(100, 320, 30)], repeats=3)
        assert result.t_ip is not None
        # True Tip ~205 ms (±20 ms jitter); ramp resolution 30 ms.
        assert 0.13 <= result.t_ip <= 0.30

    def test_sniffer_based_tip_inference(self):
        testbed, phone, calibrator = build("nexus5")
        # Generate idle-then-active cycles so PM=1 nulls appear.
        for i in range(6):
            testbed.sim.schedule(
                i * 1.0, phone.stack.send_echo_request,
                testbed.server_ip, 2, i)
        testbed.run(7.0)
        records = testbed.merged_capture()
        result = calibrator.infer_psm_from_sniffer(records)
        assert result.t_ip is not None
        assert result.t_ip == pytest.approx(0.205, abs=0.035)

    def test_listen_interval_inferred_as_zero(self):
        testbed, phone, calibrator = build("nexus5")
        phone.stack.udp_bind(4444, lambda p: None)
        # Doze, then receive buffered downlink, several times.
        for i in range(4):
            testbed.sim.schedule(
                1.5 * i + 1.0, testbed.server_host.stack.send_udp,
                phone.ip_addr, 4444, None, 32)
        testbed.run(7.0)
        records = testbed.merged_capture()
        result = calibrator.infer_listen_interval(records)
        assert result.listen_interval == 0

    def test_empty_capture_returns_unknowns(self):
        _testbed, phone, calibrator = build("nexus5")
        result = calibrator.infer_psm_from_sniffer([])
        assert result.t_ip is None
        result = calibrator.infer_listen_interval([])
        assert result.listen_interval is None
