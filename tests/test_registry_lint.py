"""Tier-1 wiring for ``scripts/check_registries.py``.

The lint builds every registered environment, checks the
:class:`~repro.testbed.environment.Environment` protocol surface,
and constructs every registered tool — so a registry entry that would
detonate mid-campaign fails the suite instead.
"""

import importlib.util
import pathlib

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
SCRIPT = REPO_ROOT / "scripts" / "check_registries.py"


def _load():
    spec = importlib.util.spec_from_file_location("check_registries",
                                                  SCRIPT)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_registries_are_clean():
    lint = _load()
    problems = lint.check_registries()
    assert not problems, "registry problems:\n" + "\n".join(problems)


def test_main_exit_code_clean():
    lint = _load()
    assert lint.main([]) == 0


def test_lint_rejects_none_builder(monkeypatch):
    from repro.testbed import scenario

    lint = _load()
    monkeypatch.setitem(
        scenario.TOOLS, "broken",
        scenario.ToolEntry("broken", None, "phone", "placeholder"))
    problems = lint.check_tools()
    assert any("broken" in p and "None" in p for p in problems)


def test_lint_rejects_unbuildable_environment(monkeypatch):
    from repro.testbed import environment

    lint = _load()

    def explode(seed=0, emulated_rtt=0.0, **params):
        raise RuntimeError("boom")

    monkeypatch.setitem(
        environment.ENVIRONMENTS, "exploding",
        environment.EnvironmentEntry("exploding", explode, "bad",
                                     frozenset()))
    problems = lint.check_environments()
    assert any("exploding" in p and "build failed" in p for p in problems)
