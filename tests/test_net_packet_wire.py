"""Unit tests for packet models, checksums, and wire encoding."""

import pytest

from repro.net.addresses import MacAddress, ip
from repro.net.checksum import internet_checksum, pseudo_header, verify_checksum
from repro.net.packet import (
    ICMP_ECHO_REPLY,
    ICMP_ECHO_REQUEST,
    TCP_ACK,
    TCP_FIN,
    TCP_RST,
    TCP_SYN,
    IcmpEcho,
    IcmpTimeExceeded,
    Packet,
    TcpSegment,
    UdpDatagram,
    tcp_flag_names,
)
from repro.net import wire


class TestMacAddress:
    def test_string_round_trip(self):
        mac = MacAddress("02:00:00:00:00:2a")
        assert str(mac) == "02:00:00:00:00:2a"
        assert MacAddress(str(mac)) == mac

    def test_bytes_round_trip(self):
        mac = MacAddress.from_index(1234)
        assert MacAddress(mac.to_bytes()) == mac

    def test_broadcast(self):
        assert MacAddress.broadcast().is_broadcast
        assert not MacAddress.from_index(1).is_broadcast

    def test_from_index_unique(self):
        macs = {MacAddress.from_index(i) for i in range(100)}
        assert len(macs) == 100

    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError):
            MacAddress(b"\x00" * 5)
        with pytest.raises(ValueError):
            MacAddress.from_index(1 << 24)

    def test_hashable(self):
        table = {MacAddress.from_index(3): "x"}
        assert table[MacAddress.from_index(3)] == "x"


class TestChecksum:
    def test_rfc1071_example(self):
        # Classic example: the checksum of these words is 0xddf2.
        data = bytes.fromhex("00010203040506070809")
        checksum = internet_checksum(data)
        verified = data[:10] + checksum.to_bytes(2, "big")
        assert verify_checksum(verified)

    def test_odd_length_padded(self):
        assert internet_checksum(b"\x01") == internet_checksum(b"\x01\x00")

    def test_zero_data(self):
        assert internet_checksum(b"\x00\x00") == 0xFFFF

    def test_pseudo_header_layout(self):
        pseudo = pseudo_header(ip("1.2.3.4"), ip("5.6.7.8"), 17, 20)
        assert len(pseudo) == 12
        assert pseudo[:4] == bytes([1, 2, 3, 4])
        assert pseudo[9] == 17


class TestPayloads:
    def test_echo_reply_mirrors_request(self):
        request = IcmpEcho(ICMP_ECHO_REQUEST, ident=7, seq=3, payload_size=56)
        reply = request.make_reply()
        assert reply.icmp_type == ICMP_ECHO_REPLY
        assert (reply.ident, reply.seq, reply.payload_size) == (7, 3, 56)
        assert not reply.is_request

    def test_echo_rejects_non_echo_type(self):
        with pytest.raises(ValueError):
            IcmpEcho(11, 1, 1)

    def test_udp_port_validation(self):
        with pytest.raises(ValueError):
            UdpDatagram(0, 80)
        with pytest.raises(ValueError):
            UdpDatagram(80, 70000)

    def test_tcp_seq_space(self):
        assert TcpSegment(1, 2, 0, 0, TCP_SYN).seq_space == 1
        assert TcpSegment(1, 2, 0, 0, TCP_ACK).seq_space == 0
        assert TcpSegment(1, 2, 0, 0, TCP_FIN | TCP_ACK, 10).seq_space == 11

    def test_tcp_flag_names(self):
        assert tcp_flag_names(TCP_SYN | TCP_ACK) == "SYN|ACK"
        assert tcp_flag_names(0) == "none"

    def test_wire_sizes(self):
        assert IcmpEcho(8, 1, 1, 56).wire_size == 64
        assert UdpDatagram(1000, 2000, 100).wire_size == 108
        assert TcpSegment(1, 2, 0, 0, TCP_ACK, 100).wire_size == 120


class TestPacket:
    def test_ttl_validation(self):
        with pytest.raises(ValueError):
            Packet(ip("1.1.1.1"), ip("2.2.2.2"), IcmpEcho(8, 1, 1), ttl=0)

    def test_stamp_keeps_first(self):
        packet = Packet(ip("1.1.1.1"), ip("2.2.2.2"), IcmpEcho(8, 1, 1))
        packet.stamp("phy", 1.0)
        packet.stamp("phy", 2.0)
        assert packet.stamps["phy"] == 1.0

    def test_probe_id_from_meta(self):
        packet = Packet(ip("1.1.1.1"), ip("2.2.2.2"), IcmpEcho(8, 1, 1),
                        meta={"probe_id": 99})
        assert packet.probe_id == 99

    def test_flow_key_direction_specific(self):
        fwd = Packet(ip("1.1.1.1"), ip("2.2.2.2"),
                     UdpDatagram(1000, 2000, 10))
        rev = Packet(ip("2.2.2.2"), ip("1.1.1.1"),
                     UdpDatagram(2000, 1000, 10))
        assert fwd.flow_key() != rev.flow_key()


class TestWireRoundTrip:
    def _roundtrip(self, packet):
        return wire.decode_ipv4(wire.encode_ipv4(packet))

    def test_icmp_echo_roundtrip(self):
        packet = Packet(ip("10.0.0.1"), ip("10.0.0.2"),
                        IcmpEcho(8, 17, 4, 56), meta={"probe_id": 1234})
        decoded = self._roundtrip(packet)
        assert decoded.src == packet.src and decoded.dst == packet.dst
        assert decoded.payload.ident == 17 and decoded.payload.seq == 4
        assert decoded.probe_id == 1234

    def test_udp_roundtrip(self):
        packet = Packet(ip("10.0.0.1"), ip("10.0.0.2"),
                        UdpDatagram(40000, 7007, 32), ttl=1,
                        meta={"probe_id": 5})
        decoded = self._roundtrip(packet)
        assert decoded.ttl == 1
        assert decoded.payload.dst_port == 7007
        assert decoded.probe_id == 5

    def test_tcp_roundtrip(self):
        segment = TcpSegment(32768, 80, 1000, 2000, TCP_SYN | TCP_ACK, 0)
        packet = Packet(ip("1.2.3.4"), ip("5.6.7.8"), segment)
        decoded = self._roundtrip(packet)
        payload = decoded.payload
        assert (payload.seq, payload.ack) == (1000, 2000)
        assert payload.has(TCP_SYN) and payload.has(TCP_ACK)

    def test_time_exceeded_embeds_original_header(self):
        original = Packet(ip("10.0.0.1"), ip("10.0.0.2"),
                          UdpDatagram(40000, 33434, 8), ttl=1,
                          meta={"probe_id": 77})
        error = Packet(ip("192.168.1.1"), ip("10.0.0.1"),
                       IcmpTimeExceeded(original))
        decoded = self._roundtrip(error)
        assert isinstance(decoded.payload, IcmpTimeExceeded)
        inner = decoded.payload.original
        # RFC 792: only the header + 8 transport bytes are embedded, so
        # addresses and ports survive but the payload (and probe tag) do not.
        assert inner.src == original.src and inner.dst == original.dst
        assert inner.payload.dst_port == 33434
        assert decoded.probe_id is None

    def test_ip_header_checksum_valid(self):
        packet = Packet(ip("10.0.0.1"), ip("10.0.0.2"), IcmpEcho(8, 1, 1))
        raw = wire.encode_ipv4(packet)
        assert verify_checksum(raw[:20])

    def test_total_length_field(self):
        packet = Packet(ip("10.0.0.1"), ip("10.0.0.2"),
                        UdpDatagram(1000, 2000, 100))
        raw = wire.encode_ipv4(packet)
        assert len(raw) == packet.wire_size
        assert int.from_bytes(raw[2:4], "big") == packet.wire_size

    def test_no_probe_id_when_payload_small(self):
        packet = Packet(ip("10.0.0.1"), ip("10.0.0.2"),
                        UdpDatagram(1000, 2000, 4))
        decoded = self._roundtrip(packet)
        assert decoded.probe_id is None

    def test_truncated_input_rejected(self):
        with pytest.raises(ValueError):
            wire.decode_ipv4(b"\x45\x00\x00")

    def test_non_ipv4_rejected(self):
        with pytest.raises(ValueError):
            wire.decode_ipv4(b"\x60" + b"\x00" * 30)
