"""Smoke tests: every example script runs to completion.

``compare_tools.py`` is excluded (it simulates minutes of congested
WLAN); everything else executes in seconds and is run in-process.
"""

import pathlib
import runpy

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"

FAST_EXAMPLES = (
    "quickstart.py",
    "diagnose_inflation.py",
    "pcap_workflow.py",
    "cellular_rrc.py",
    "two_phones.py",
    "calibrate_and_plan.py",
    "energy_budget.py",
    "observability_tour.py",
    "scenario_sweep.py",
    "lint_ci.py",
)


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs(script, capsys, monkeypatch):
    path = EXAMPLES_DIR / script
    assert path.exists(), f"missing example {script}"
    # Examples that read sys.argv must see a clean command line.
    monkeypatch.setattr("sys.argv", [str(path)])
    runpy.run_path(str(path), run_name="__main__")
    out = capsys.readouterr().out
    assert len(out) > 100, f"{script} produced no meaningful output"


def test_all_examples_are_covered_or_excluded():
    on_disk = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    covered = set(FAST_EXAMPLES) | {"compare_tools.py"}
    assert on_disk == covered, (
        "new example scripts must be added to the smoke test "
        f"(or explicitly excluded): {sorted(on_disk ^ covered)}"
    )
