"""Property suite for the TWT and predictive-sleep state machines.

Three invariants, driven by hypothesis-generated traffic and clock
parameters:

* a :class:`~repro.wifi.twt.TwtStation` never lets a non-missed wake
  drift beyond the declared bound
  (:func:`~repro.analysis.analytic.twt_wake_error_bound`), and every
  logged error is exactly the linear drift model's prediction;
* a :class:`~repro.wifi.predictive.PredictiveSleepStation` never
  sleeps past ``doze_start + fallback_timeout``
  (:func:`~repro.analysis.analytic.predictive_wake_bound`);
* both machines are bit-deterministic under a fixed seed.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.analytic import (
    predictive_wake_bound,
    twt_wake_error_bound,
)
from repro.net.addresses import MacAddress, ip
from repro.net.packet import Packet, UdpDatagram
from repro.sim.scheduler import Simulator
from repro.wifi.ap import AccessPoint
from repro.wifi.channel import WifiChannel
from repro.wifi.predictive import PredictiveSleepConfig, PredictiveSleepStation
from repro.wifi.sta import PowerState, PsmConfig
from repro.wifi.twt import TwtConfig, TwtStation

SLOW = settings(max_examples=20, deadline=None,
                suppress_health_check=[HealthCheck.too_slow])

PHONE_IP = ip("192.168.1.10")
BI = 0.1024


def build_cell(sta_cls, seed, **sta_kwargs):
    """A bare channel + AP + one experimental station, associated."""
    sim = Simulator(seed=seed)
    channel = WifiChannel(sim, name="wlan")
    ap = AccessPoint(sim, channel, MacAddress.from_index(0x10),
                     ip("192.168.1.1"), "192.168.1.0/24",
                     rng=sim.rng.stream("ap"))
    mac = MacAddress.from_index(0x30)
    sta = sta_cls(sim, channel, mac, psm=PsmConfig(timeout=0.05),
                  rng=sim.rng.stream("sta"), **sta_kwargs)
    received = []
    sta.on_packet = received.append
    sta.associate(ap)
    ap.register_station_ip(PHONE_IP, mac)
    return sim, ap, sta, received


def schedule_downlink(sim, ap, times):
    def send():
        packet = Packet(ip("10.0.0.2"), PHONE_IP,
                        UdpDatagram(1000, 2000, payload_size=120))
        ap._wireless_transmit(packet, PHONE_IP)

    for when in times:
        sim.schedule(when, send)


class TestTwtDriftBound:
    @given(
        seed=st.integers(0, 10_000),
        drift_ppm=st.sampled_from([-5000, -200, -20, 0, 20, 200, 1000,
                                   5000]),
        sp_interval=st.sampled_from([0.2, 0.4, 0.8]),
        gaps=st.lists(st.floats(0.05, 1.0), min_size=1, max_size=12),
    )
    @SLOW
    def test_wake_error_never_exceeds_declared_bound(
            self, seed, drift_ppm, sp_interval, gaps):
        drift = drift_ppm * 1e-6
        twt = TwtConfig(sp_interval=sp_interval, sp_duration=0.02,
                        guard=2e-3, drift_rate=drift)
        sim, ap, sta, received = build_cell(TwtStation, seed, twt=twt)
        times, now = [], 0.3
        for gap in gaps:
            now += gap
            times.append(now)
        schedule_downlink(sim, ap, times)
        sim.run(until=now + 3 * sp_interval)

        bound = twt_wake_error_bound(drift, twt.guard, sp_interval, BI)
        wakes = [w for w in sta.wake_log if not w.missed]
        assert wakes, "the station never scheduled a wake"
        for wake in wakes:
            assert abs(wake.error) <= bound + 1e-12
            # The error is exactly the linear drift model's value.
            assert wake.error == pytest.approx(drift * wake.resync_age)
        # Within-guard errors are also within the machine's own guard.
        for wake in wakes:
            assert abs(wake.error) <= twt.guard + 1e-12

    @given(seed=st.integers(0, 10_000))
    @SLOW
    def test_traffic_always_delivered(self, seed):
        twt = TwtConfig(sp_interval=0.4, sp_duration=0.02, guard=2e-3,
                        drift_rate=1000e-6)
        sim, ap, sta, received = build_cell(TwtStation, seed, twt=twt)
        times = [0.5 + 0.37 * k for k in range(8)]
        schedule_downlink(sim, ap, times)
        sim.run(until=times[-1] + 2.0)
        assert len(received) == len(times)

    def test_hot_drift_recovers_via_missed_sp_path(self):
        # Drift so hot one SP gap exceeds the guard: every schedule
        # falls back to beacon recovery, and traffic still flows.
        twt = TwtConfig(sp_interval=0.4, sp_duration=0.02, guard=2e-3,
                        drift_rate=20_000e-6)
        sim, ap, sta, received = build_cell(TwtStation, 7, twt=twt)
        times = [0.5 + 0.37 * k for k in range(6)]
        schedule_downlink(sim, ap, times)
        sim.run(until=times[-1] + 2.0)
        assert sta.missed_sp_count > 0
        assert sta.resync_count > 0
        assert len(received) == len(times)


class TestPredictiveFallbackCap:
    @given(
        seed=st.integers(0, 10_000),
        fallback=st.sampled_from([0.15, 0.3, 0.6]),
        gaps=st.lists(st.floats(0.02, 1.2), min_size=1, max_size=12),
    )
    @SLOW
    def test_never_wakes_later_than_fallback_timeout(
            self, seed, fallback, gaps):
        predictor = PredictiveSleepConfig(fallback_timeout=fallback)
        sim, ap, sta, received = build_cell(PredictiveSleepStation, seed,
                                            predictor=predictor)
        times, now = [], 0.3
        for gap in gaps:
            now += gap
            times.append(now)
        schedule_downlink(sim, ap, times)
        sim.run(until=now + 2 * fallback)

        bound = predictive_wake_bound(fallback)
        assert sta.wake_log, "the station never dozed"
        for wake in sta.wake_log:
            assert wake.wake_at <= wake.deadline + 1e-12
            assert wake.wake_at - wake.doze_start <= bound + 1e-12
        assert len(received) == len(times)

    def test_actual_doze_spans_respect_the_cap(self):
        # Beyond the log: the recorded DOZE state transitions
        # themselves never span longer than the fallback timeout.
        predictor = PredictiveSleepConfig(fallback_timeout=0.25)
        sim, ap, sta, received = build_cell(PredictiveSleepStation, 11,
                                            predictor=predictor)
        schedule_downlink(sim, ap, [0.5, 1.4, 2.9])
        sim.run(until=5.0)
        doze_start = None
        for when, _old, new, _reason in sta.state_transitions:
            if new == PowerState.DOZE:
                doze_start = when
            elif doze_start is not None:
                assert when - doze_start <= \
                    predictor.fallback_timeout + 1e-9
                doze_start = None

    def test_mispredicts_widen_the_interval(self):
        predictor = PredictiveSleepConfig(initial_interval=0.05,
                                          fallback_timeout=0.5)
        sim, ap, sta, received = build_cell(PredictiveSleepStation, 3,
                                            predictor=predictor)
        # No traffic at all: every predicted wake is a mispredict.
        sim.run(until=4.0)
        assert sta.mispredict_count > 0
        assert sta.predicted_interval > predictor.initial_interval


class TestDeterminism:
    def _run_once(self, sta_cls, **sta_kwargs):
        sim, ap, sta, received = build_cell(sta_cls, 42, **sta_kwargs)
        times = [0.4 + 0.31 * k for k in range(6)]
        schedule_downlink(sim, ap, times)
        sim.run(until=4.0)
        return sta

    @pytest.mark.parametrize("sta_cls,kwargs", [
        (TwtStation, {"twt": TwtConfig(sp_interval=0.4, sp_duration=0.02,
                                       guard=2e-3, drift_rate=500e-6)}),
        (PredictiveSleepStation,
         {"predictor": PredictiveSleepConfig(fallback_timeout=0.3)}),
    ])
    def test_fixed_seed_reproduces_wake_log_exactly(self, sta_cls,
                                                    kwargs):
        first = self._run_once(sta_cls, **kwargs)
        second = self._run_once(sta_cls, **kwargs)
        assert first.state_transitions == second.state_transitions
        log_a = [tuple(getattr(w, slot) for slot in type(w).__slots__)
                 for w in first.wake_log]
        log_b = [tuple(getattr(w, slot) for slot in type(w).__slots__)
                 for w in second.wake_log]
        assert log_a == log_b
