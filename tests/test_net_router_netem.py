"""Unit tests for the router (TTL handling) and netem emulation."""

import pytest

from repro.net.addresses import MacAddress, ip
from repro.net.arp import ArpTable
from repro.net.host import Host
from repro.net.link import Link
from repro.net.netem import NetemQdisc
from repro.net.packet import IcmpEcho, IcmpTimeExceeded, Packet, UdpDatagram
from repro.net.router import Router


def make_routed_pair(sim, send_time_exceeded=True):
    """host_a -- router -- host_b across two subnets."""
    router = Router(sim, send_time_exceeded=send_time_exceeded,
                    rng=sim.rng.stream("router"))
    arp_a, arp_b = ArpTable(), ArpTable()
    link_a, link_b = Link(sim), Link(sim)
    router.add_ethernet_port("net-a", ip("10.0.1.1"), "10.0.1.0/24",
                             arp_a, link=link_a)
    router.add_ethernet_port("net-b", ip("10.0.2.1"), "10.0.2.0/24",
                             arp_b, link=link_b)
    host_a = Host(sim, "a", ip("10.0.1.2"), MacAddress.from_index(1),
                  arp_a, gateway=ip("10.0.1.1"),
                  rng=sim.rng.stream("host-a"))
    host_a.nic.attach_link(link_a)
    host_b = Host(sim, "b", ip("10.0.2.2"), MacAddress.from_index(2),
                  arp_b, gateway=ip("10.0.2.1"),
                  rng=sim.rng.stream("host-b"))
    host_b.nic.attach_link(link_b)
    return router, host_a, host_b


class TestRouting:
    def test_forwards_between_subnets(self, sim):
        router, a, b = make_routed_pair(sim)
        replies = []
        a.stack.register_ping(5, replies.append)
        a.stack.send_echo_request(b.ip_addr, 5, 1)
        sim.run(until=1.0)
        assert len(replies) == 1
        assert router.packets_forwarded >= 2

    def test_ttl_decremented_in_transit(self, sim):
        router, a, b = make_routed_pair(sim)
        seen = []
        b.stack.udp_bind(4000, seen.append)
        a.stack.send_udp(b.ip_addr, 4000, payload_size=10, ttl=10)
        sim.run(until=1.0)
        assert seen[0].ttl == 9

    def test_ttl_one_dropped_with_time_exceeded(self, sim):
        router, a, b = make_routed_pair(sim)
        errors = []
        a.stack.add_icmp_error_handler(errors.append)
        delivered = []
        b.stack.udp_bind(4000, delivered.append)
        a.stack.send_udp(b.ip_addr, 4000, payload_size=10, ttl=1,
                         meta={"probe_id": 1})
        sim.run(until=1.0)
        assert delivered == []
        assert router.packets_expired == 1
        assert len(errors) == 1
        assert isinstance(errors[0].payload, IcmpTimeExceeded)
        # The error's source is the ingress interface of the router.
        assert errors[0].src == ip("10.0.1.1")

    def test_time_exceeded_can_be_suppressed(self, sim):
        router, a, b = make_routed_pair(sim, send_time_exceeded=False)
        errors = []
        a.stack.add_icmp_error_handler(errors.append)
        a.stack.send_udp(b.ip_addr, 4000, payload_size=10, ttl=1)
        sim.run(until=1.0)
        assert errors == []
        assert router.packets_expired == 1

    def test_no_icmp_error_about_icmp_error(self, sim):
        router, a, _b = make_routed_pair(sim)
        inner = Packet(ip("10.0.1.2"), ip("10.0.2.2"),
                       UdpDatagram(1000, 2000, 8))
        error = Packet(ip("10.0.1.2"), ip("10.0.2.2"),
                       IcmpTimeExceeded(inner), ttl=1)
        errors = []
        a.stack.add_icmp_error_handler(errors.append)
        a.stack.send(error)
        sim.run(until=1.0)
        assert errors == []

    def test_unroutable_destination_counted(self, sim):
        router, a, _b = make_routed_pair(sim)
        a.stack.send_udp(ip("172.16.0.1"), 4000, payload_size=10)
        sim.run(until=1.0)
        assert router.packets_unroutable == 1

    def test_router_answers_ping_to_its_address(self, sim):
        _router, a, _b = make_routed_pair(sim)
        replies = []
        a.stack.register_ping(6, replies.append)
        a.stack.send_echo_request(ip("10.0.1.1"), 6, 1)
        sim.run(until=1.0)
        assert len(replies) == 1

    def test_longest_prefix_match(self, sim):
        router, _a, _b = make_routed_pair(sim)
        specific = router.lookup_route(ip("10.0.2.7"))
        assert specific is not None
        assert str(specific[0]) == "10.0.2.0/24"


class TestNetem:
    def test_fixed_delay(self, sim):
        qdisc = NetemQdisc(sim, delay=0.05)
        arrivals = []
        packet = Packet(ip("1.1.1.1"), ip("2.2.2.2"), IcmpEcho(8, 1, 1))
        qdisc.apply(packet, lambda p: arrivals.append(sim.now))
        sim.run()
        assert arrivals == [pytest.approx(0.05)]

    def test_uniform_jitter_bounded(self, sim):
        qdisc = NetemQdisc(sim, delay=0.05, jitter=0.01,
                           rng=sim.rng.stream("j"))
        delays = [qdisc.draw_delay() for _ in range(500)]
        assert all(0.04 <= d <= 0.06 for d in delays)
        assert max(delays) - min(delays) > 0.005  # actually spread out

    def test_normal_jitter_never_negative(self, sim):
        qdisc = NetemQdisc(sim, delay=0.001, jitter=0.01,
                           jitter_dist="normal", rng=sim.rng.stream("j"))
        assert all(qdisc.draw_delay() >= 0 for _ in range(500))

    def test_loss_drops_packets(self, sim):
        qdisc = NetemQdisc(sim, loss=1.0, rng=sim.rng.stream("l"))
        arrivals = []
        packet = Packet(ip("1.1.1.1"), ip("2.2.2.2"), IcmpEcho(8, 1, 1))
        qdisc.apply(packet, lambda p: arrivals.append(p))
        sim.run()
        assert arrivals == []
        assert qdisc.stats.lost == 1

    def test_maintain_order(self, sim):
        qdisc = NetemQdisc(sim, delay=0.05, jitter=0.04,
                           rng=sim.rng.stream("o"), maintain_order=True)
        order = []
        for index in range(50):
            packet = Packet(ip("1.1.1.1"), ip("2.2.2.2"),
                            UdpDatagram(1000, 2000, index))
            qdisc.apply(packet, lambda p: order.append(p.payload.payload_size))
        sim.run()
        assert order == sorted(order)

    def test_reordering_possible_without_flag(self, sim):
        qdisc = NetemQdisc(sim, delay=0.05, jitter=0.04,
                           rng=sim.rng.stream("r"))
        order = []
        for index in range(100):
            packet = Packet(ip("1.1.1.1"), ip("2.2.2.2"),
                            UdpDatagram(1000, 2000, index))
            qdisc.apply(packet, lambda p: order.append(p.payload.payload_size))
        sim.run()
        assert order != sorted(order)

    def test_parameter_validation(self, sim):
        with pytest.raises(ValueError):
            NetemQdisc(sim, delay=-1)
        with pytest.raises(ValueError):
            NetemQdisc(sim, loss=1.5, rng=sim.rng.stream("x"))
        with pytest.raises(ValueError):
            NetemQdisc(sim, jitter=0.01)  # jitter without rng
        with pytest.raises(ValueError):
            NetemQdisc(sim, jitter=0.01, jitter_dist="pareto",
                       rng=sim.rng.stream("x"))

    def test_emulates_rtt_on_server_egress(self, lan):
        # End-to-end: a 30 ms qdisc on b makes a's ping RTT ~30 ms.
        sim, a, b = lan
        b.netem = NetemQdisc(sim, delay=0.030, rng=sim.rng.stream("n"))
        times = []
        a.stack.register_ping(7, lambda p: times.append(sim.now))
        a.stack.send_echo_request(b.ip_addr, 7, 1)
        sim.run(until=1.0)
        assert times[0] == pytest.approx(0.030, abs=0.002)
