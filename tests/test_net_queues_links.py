"""Unit tests for queues, links, interfaces, and the switch."""

import pytest

from repro.net.addresses import MacAddress, ip
from repro.net.interface import EthernetFrame, EthernetInterface
from repro.net.link import Link
from repro.net.packet import IcmpEcho, Packet, UdpDatagram
from repro.net.queues import DropTailQueue
from repro.net.switch import Switch


def make_packet(size=100):
    return Packet(ip("1.1.1.1"), ip("2.2.2.2"),
                  UdpDatagram(1000, 2000, size))


class TestDropTailQueue:
    def test_fifo_order(self):
        queue = DropTailQueue()
        items = [make_packet(i) for i in range(5)]
        for item in items:
            assert queue.enqueue(item)
        assert [queue.dequeue() for _ in range(5)] == items

    def test_packet_limit_drops_tail(self):
        queue = DropTailQueue(packet_limit=2)
        assert queue.enqueue(make_packet())
        assert queue.enqueue(make_packet())
        assert not queue.enqueue(make_packet())
        assert queue.stats.dropped == 1
        assert len(queue) == 2

    def test_byte_limit(self):
        queue = DropTailQueue(packet_limit=None, byte_limit=250)
        assert queue.enqueue(make_packet(100))  # 128 bytes on the wire
        assert not queue.enqueue(make_packet(200))
        assert queue.stats.bytes_dropped > 0

    def test_byte_accounting(self):
        queue = DropTailQueue()
        packet = make_packet(72)
        queue.enqueue(packet)
        assert queue.bytes_queued == packet.wire_size
        queue.dequeue()
        assert queue.bytes_queued == 0

    def test_dequeue_empty_returns_none(self):
        assert DropTailQueue().dequeue() is None

    def test_peek_does_not_remove(self):
        queue = DropTailQueue()
        packet = make_packet()
        queue.enqueue(packet)
        assert queue.peek() is packet
        assert len(queue) == 1

    def test_clear(self):
        queue = DropTailQueue()
        queue.enqueue(make_packet())
        queue.clear()
        assert queue.is_empty and queue.bytes_queued == 0

    def test_invalid_limit_rejected(self):
        with pytest.raises(ValueError):
            DropTailQueue(packet_limit=0)


class _Sink:
    def __init__(self):
        self.frames = []

    def handle_frame(self, frame, interface):
        self.frames.append(frame)


class TestLinkAndInterface:
    def _pair(self, sim, bandwidth=1e9, prop=1e-6):
        link = Link(sim, bandwidth_bps=bandwidth, propagation_delay=prop)
        sink_a, sink_b = _Sink(), _Sink()
        nic_a = EthernetInterface(sim, sink_a, MacAddress.from_index(1))
        nic_b = EthernetInterface(sim, sink_b, MacAddress.from_index(2))
        nic_a.attach_link(link)
        nic_b.attach_link(link)
        return nic_a, nic_b, sink_a, sink_b

    def test_frame_delivered_to_peer(self, sim):
        nic_a, nic_b, _, sink_b = self._pair(sim)
        frame = EthernetFrame(nic_b.mac, nic_a.mac, make_packet())
        nic_a.send(frame)
        sim.run()
        assert sink_b.frames == [frame]

    def test_delivery_time_includes_serialization_and_propagation(self, sim):
        nic_a, nic_b, _, sink_b = self._pair(sim, bandwidth=1e6, prop=1e-3)
        packet = make_packet(100)
        frame = EthernetFrame(nic_b.mac, nic_a.mac, packet)
        arrival = []
        nic_b.add_tap(lambda f, d: arrival.append(sim.now))
        nic_a.send(frame)
        sim.run()
        expected = frame.wire_size * 8 / 1e6 + 1e-3
        assert arrival[0] == pytest.approx(expected)

    def test_back_to_back_frames_serialize(self, sim):
        nic_a, nic_b, _, sink_b = self._pair(sim, bandwidth=1e6, prop=0.0)
        frame1 = EthernetFrame(nic_b.mac, nic_a.mac, make_packet(1000))
        frame2 = EthernetFrame(nic_b.mac, nic_a.mac, make_packet(1000))
        arrivals = []
        nic_b.add_tap(lambda f, d: arrivals.append(sim.now))
        nic_a.send(frame1)
        nic_a.send(frame2)
        sim.run()
        per_frame = frame1.wire_size * 8 / 1e6
        assert arrivals[1] - arrivals[0] == pytest.approx(per_frame)

    def test_full_duplex(self, sim):
        nic_a, nic_b, sink_a, sink_b = self._pair(sim)
        nic_a.send(EthernetFrame(nic_b.mac, nic_a.mac, make_packet()))
        nic_b.send(EthernetFrame(nic_a.mac, nic_b.mac, make_packet()))
        sim.run()
        assert len(sink_a.frames) == 1 and len(sink_b.frames) == 1

    def test_third_attach_rejected(self, sim):
        link = Link(sim)
        for index in range(2):
            nic = EthernetInterface(sim, _Sink(), MacAddress.from_index(index))
            nic.attach_link(link)
        extra = EthernetInterface(sim, _Sink(), MacAddress.from_index(9))
        with pytest.raises(RuntimeError):
            extra.attach_link(link)

    def test_send_without_link_rejected(self, sim):
        nic = EthernetInterface(sim, _Sink(), MacAddress.from_index(1))
        with pytest.raises(RuntimeError):
            nic.send(EthernetFrame(MacAddress.broadcast(), nic.mac,
                                   make_packet()))


class TestSwitch:
    def _star(self, sim, n=3):
        switch = Switch(sim)
        nics, sinks = [], []
        for index in range(n):
            sink = _Sink()
            nic = EthernetInterface(sim, sink, MacAddress.from_index(index + 1))
            link = Link(sim)
            nic.attach_link(link)
            switch.new_port(link)
            nics.append(nic)
            sinks.append(sink)
        return switch, nics, sinks

    def test_unknown_destination_flooded(self, sim):
        switch, nics, sinks = self._star(sim)
        nics[0].send(EthernetFrame(nics[2].mac, nics[0].mac, make_packet()))
        sim.run()
        # Flooded to both other ports (destination unknown).
        assert len(sinks[1].frames) == 1 and len(sinks[2].frames) == 1
        assert switch.frames_flooded == 1

    def test_learned_destination_unicast(self, sim):
        switch, nics, sinks = self._star(sim)
        # Teach the switch where nic2 lives (this frame itself floods).
        nics[2].send(EthernetFrame(nics[0].mac, nics[2].mac, make_packet()))
        sim.run()
        flooded_to_1 = len(sinks[1].frames)
        nics[0].send(EthernetFrame(nics[2].mac, nics[0].mac, make_packet()))
        sim.run()
        assert len(sinks[2].frames) == 1
        assert len(sinks[1].frames) == flooded_to_1  # no second flood
        assert switch.frames_forwarded == 1

    def test_broadcast_floods(self, sim):
        switch, nics, sinks = self._star(sim, n=4)
        nics[0].send(EthernetFrame(MacAddress.broadcast(), nics[0].mac,
                                   make_packet()))
        sim.run()
        assert all(len(s.frames) == 1 for s in sinks[1:])

    def test_no_reflection_to_ingress(self, sim):
        switch, nics, sinks = self._star(sim)
        nics[0].send(EthernetFrame(MacAddress.broadcast(), nics[0].mac,
                                   make_packet()))
        sim.run()
        assert len(sinks[0].frames) == 0
