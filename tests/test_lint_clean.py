"""The codebase itself passes its own lint (tier-1 acceptance gate).

``repro lint`` must report zero non-baselined findings on ``src/``, the
legacy wrapper scripts must reach the same verdict as the engine rules
they delegate to, and the only in-tree suppressions must be the two
documented wall-clock reads in the observed scheduler path.
"""

import importlib.util
import pathlib

from repro.cli import main as cli_main
from repro.lint import RULES, run_lint

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
SRC = REPO_ROOT / "src"


def _load_script(name):
    spec = importlib.util.spec_from_file_location(
        name, REPO_ROOT / "scripts" / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_src_tree_lints_clean():
    result = run_lint(SRC)
    formatted = "\n".join(f.describe() for f in result.findings)
    assert not result.findings, f"lint findings on src/:\n{formatted}"
    assert result.files_scanned > 90


def test_only_documented_suppressions():
    """Pragma suppressions must not accrete silently: the only in-tree
    ones are the scheduler's two volatile wall-clock self-time reads."""
    result = run_lint(SRC)
    suppressed = sorted((f.path, f.rule_id) for f in result.suppressed)
    assert suppressed == [("repro/sim/scheduler.py", "RL101")] * 2


def test_cli_lint_exit_code_and_output(capsys):
    assert cli_main(["lint"]) == 0
    out = capsys.readouterr().out
    assert "lint clean" in out
    assert "RL301" in out  # the registry project rule ran


def test_trace_guard_wrapper_matches_engine():
    wrapper = _load_script("check_trace_guards")
    engine = run_lint(SRC, rules=[RULES["RL001"], RULES["RL002"]],
                      include_project_rules=False)
    violations = wrapper.find_violations(SRC)
    assert [(p.relative_to(SRC).as_posix(), line)
            for p, line, _ in violations] \
        == [(f.path, f.line) for f in engine.findings]
    assert wrapper.main([str(SRC)]) == (1 if engine.findings else 0)


def test_registry_wrapper_matches_engine():
    wrapper = _load_script("check_registries")
    problems = wrapper.check_registries()
    engine_findings = RULES["RL301"].check(SRC)
    assert problems == [f.message for f in engine_findings]
    assert wrapper.main([]) == (1 if problems else 0)


def test_lint_all_runner_clean(capsys):
    runner = _load_script("lint_all")
    assert runner.main([]) == 0
    out = capsys.readouterr().out
    assert "lint clean" in out
    assert "trace-guard lint" in out
    assert "registries clean" in out


def test_trace_guard_wrapper_flags_seeded_violations(tmp_path):
    """The wrapper keeps its legacy behaviour on ad-hoc trees, and the
    pragma is recognised with flexible whitespace and trailing text."""
    wrapper = _load_script("check_trace_guards")
    bad = tmp_path / "pkg" / "module.py"
    bad.parent.mkdir()
    bad.write_text(
        "def f(sim):\n"
        "    sim.trace.record(sim.now, 'x', 'unguarded')\n"
        "    sim.metrics.inc('y_total')  #obs:caller-guarded (see caller)\n"
        "    x = 1  # obs: caller-guarded\n",
        encoding="utf-8")
    violations = wrapper.find_violations(tmp_path)
    # Line 2 is unguarded; line 3's flexible pragma counts; line 4's
    # pragma is unused and flagged so suppressions cannot rot.
    assert [(line, "record" in text or "x = 1" in text)
            for _, line, text in violations] == [(2, True), (4, True)]
