"""Tests for the probe ledger and overhead decomposition (§2.1)."""

import pytest

from repro.core.measurement import ProbeCollector, ProbeRecord
from repro.core.overhead import OVERHEAD_NAMES, OverheadSet, decompose
from repro.testbed.topology import Testbed


@pytest.fixture
def bed():
    testbed = Testbed(seed=21, emulated_rtt=0.03)
    phone = testbed.add_phone("nexus5")
    collector = ProbeCollector(phone)
    testbed.settle(0.5)
    return testbed, phone, collector


def run_icmp_probe(testbed, phone, collector, wait=1.0):
    """One fully instrumented ICMP probe; returns its record."""
    sim = testbed.sim
    record = collector.new_probe()
    done = []

    def on_reply(packet):
        collector.record_user_recv(record.probe_id, sim.now)
        done.append(packet)

    handle = phone.stack.register_ping(
        0x700 + record.probe_id, phone.user_wrap(on_reply))
    t0 = phone.user_send(lambda: phone.stack.send_echo_request(
        testbed.server_ip, 0x700 + record.probe_id, 1,
        meta=collector.meta_for(record)))
    collector.record_user_send(record.probe_id, t0)
    testbed.run(wait)
    handle.close()
    return record


class TestProbeRecord:
    def test_kind_validated(self):
        with pytest.raises(ValueError):
            ProbeRecord(1, kind="junk")

    def test_incomplete_record_returns_none(self):
        record = ProbeRecord(1)
        assert record.du is None and record.dk is None
        assert record.dn is None and record.dv is None
        assert not record.complete


class TestCollectorLedger:
    def test_full_ledger_for_one_probe(self, bed):
        testbed, phone, collector = bed
        record = run_icmp_probe(testbed, phone, collector)
        assert record.complete
        assert record.request is not None and record.response is not None
        # The paper's layering invariant: du >= dk >= dv >= dn.
        assert record.du >= record.dk >= record.dv >= record.dn > 0

    def test_dn_close_to_emulated_rtt(self, bed):
        testbed, phone, collector = bed
        record = run_icmp_probe(testbed, phone, collector)
        assert record.dn == pytest.approx(0.03, abs=0.005)

    def test_driver_path_delays_exposed(self, bed):
        testbed, phone, collector = bed
        record = run_icmp_probe(testbed, phone, collector)
        assert record.dvsend is not None and record.dvsend > 0
        assert record.dvrecv is not None and record.dvrecv > 0
        assert record.dvrecv < record.dv

    def test_probe_ids_monotonic(self, bed):
        _testbed, _phone, collector = bed
        records = [collector.new_probe() for _ in range(5)]
        ids = [r.probe_id for r in records]
        assert ids == sorted(ids) and len(set(ids)) == 5

    def test_meta_for_includes_kind(self, bed):
        _testbed, _phone, collector = bed
        record = collector.new_probe(kind="warmup")
        meta = collector.meta_for(record)
        assert meta == {"probe_id": record.probe_id, "probe_kind": "warmup"}

    def test_records_filtered_by_kind(self, bed):
        _testbed, _phone, collector = bed
        collector.new_probe(kind="probe")
        collector.new_probe(kind="warmup")
        collector.new_probe(kind="background")
        assert len(collector.records("probe")) == 1
        assert len(collector.records("warmup")) == 1
        assert len(collector.records("background")) == 1

    def test_layered_rtts_structure(self, bed):
        testbed, phone, collector = bed
        run_icmp_probe(testbed, phone, collector)
        layers = collector.layered_rtts()
        assert set(layers) == {"du", "dk", "dv", "dn"}
        assert all(len(v) == 1 for v in layers.values())

    def test_timeout_counted_as_loss(self, bed):
        _testbed, _phone, collector = bed
        record = collector.new_probe()
        collector.record_timeout(record.probe_id)
        assert collector.loss_count() == 1

    def test_untagged_packets_ignored(self, bed):
        testbed, phone, collector = bed
        phone.stack.register_ping(0x9, lambda p: None)
        phone.stack.send_echo_request(testbed.server_ip, 0x9, 1)  # no meta
        testbed.run(0.5)
        assert collector.records() == []


class TestTcpResponsePreference:
    def test_syn_ack_preferred_over_pure_ack(self, bed):
        testbed, phone, collector = bed
        sim = testbed.sim
        record = collector.new_probe()
        meta = collector.meta_for(record)
        done = []
        conn = phone.stack.tcp.connect(testbed.server_ip, 80, meta=meta)
        conn.on_connected = lambda c: done.append(sim.now)
        t0 = sim.now
        collector.record_user_send(record.probe_id, t0)
        testbed.run(1.0)
        collector.record_user_recv(record.probe_id, done[0])
        # The response on file must be the SYN|ACK, not our outgoing ACK.
        from repro.net.packet import TCP_SYN

        assert record.response.payload.has(TCP_SYN)
        assert record.request.payload.has(TCP_SYN)
        assert not record.request.payload.has(0x10)  # pure SYN out

    def test_http_data_replaces_server_ack(self, bed):
        testbed, phone, collector = bed
        sim = testbed.sim
        conn = phone.stack.tcp.connect(testbed.server_ip, 80)
        testbed.run(0.5)
        record = collector.new_probe()
        got = []
        conn.on_data = lambda c, n, m: got.append(n)
        conn.send(120, meta=collector.meta_for(record))
        testbed.run(0.5)
        assert got == [230]
        # Server ACKed our request first, then sent data: data must win.
        assert record.response.payload.payload_size > 0


class TestOverheadSet:
    def test_decompose_names(self, bed):
        testbed, phone, collector = bed
        run_icmp_probe(testbed, phone, collector)
        overheads = decompose(collector.completed())
        for name in OVERHEAD_NAMES:
            assert len(overheads.series(name)) == 1
        assert overheads.series("total")[0] == pytest.approx(
            overheads.series("du_k")[0] + overheads.series("dk_n")[0])
        assert overheads.series("dk_n")[0] == pytest.approx(
            overheads.series("dk_v")[0] + overheads.series("dv_n")[0])

    def test_unknown_series_rejected(self):
        with pytest.raises(ValueError):
            OverheadSet().series("nope")

    def test_box_and_summary(self, bed):
        testbed, phone, collector = bed
        for _ in range(5):
            run_icmp_probe(testbed, phone, collector, wait=0.3)
        overheads = decompose(collector.completed())
        box = overheads.box("dk_n")
        summary = overheads.summary("dk_n")
        assert box.n == 5 and summary.n == 5
        assert box.q1 <= box.median <= box.q3
        # 0.3 s idle between probes > Tis: each pays the SDIO wake (~10 ms).
        assert 0.005 < summary.mean < 0.030
