"""Unit tests for the iPerf-style load generator and sink."""

import pytest

from repro.net.iperf import UdpFlow, UdpLoadGenerator, UdpSink
from repro.net.servers import UdpEchoServer


class TestUdpFlow:
    def test_interval_matches_rate(self, lan):
        sim, a, _b = lan
        flow = UdpFlow(sim, a.stack, _b.ip_addr, 5001, rate_bps=2.5e6,
                       payload_size=1470)
        assert flow.interval == pytest.approx(1470 * 8 / 2.5e6)

    def test_paced_sending(self, lan):
        sim, a, b = lan
        sink = UdpSink(b, 5001)
        flow = UdpFlow(sim, a.stack, b.ip_addr, 5001, rate_bps=1e6,
                       payload_size=1250)  # 100 packets/sec
        flow.start(jitter_first=False)
        sim.run(until=1.0)
        flow.stop()
        assert flow.packets_sent == pytest.approx(100, abs=2)
        assert sink.packets_received == flow.packets_sent

    def test_stop_halts_flow(self, lan):
        sim, a, b = lan
        UdpSink(b, 5001)
        flow = UdpFlow(sim, a.stack, b.ip_addr, 5001, rate_bps=1e6)
        flow.start(jitter_first=False)
        sim.run(until=0.5)
        flow.stop()
        sent = flow.packets_sent
        sim.run(until=2.0)
        assert flow.packets_sent == sent

    def test_invalid_rate_rejected(self, lan):
        sim, a, b = lan
        with pytest.raises(ValueError):
            UdpFlow(sim, a.stack, b.ip_addr, 5001, rate_bps=0)


class TestLoadGenerator:
    def test_aggregate_offered_load(self, lan):
        sim, a, b = lan
        gen = UdpLoadGenerator(sim, a.stack, b.ip_addr, 5001, flows=10,
                               rate_bps=2.5e6, rng=sim.rng.stream("g"))
        assert gen.offered_load_bps == pytest.approx(25e6)

    def test_throughput_measured_at_sink(self, lan):
        sim, a, b = lan
        sink = UdpSink(b, 5001)
        gen = UdpLoadGenerator(sim, a.stack, b.ip_addr, 5001, flows=4,
                               rate_bps=1e6, rng=sim.rng.stream("g"))
        gen.start()
        sim.run(until=2.0)
        gen.stop()
        # Gigabit wire: everything offered gets through.
        assert sink.throughput_bps() == pytest.approx(4e6, rel=0.1)
        assert gen.packets_sent == sink.packets_received

    def test_flows_desynchronised(self, lan):
        sim, a, b = lan
        UdpSink(b, 5001)
        gen = UdpLoadGenerator(sim, a.stack, b.ip_addr, 5001, flows=10,
                               rate_bps=2.5e6, rng=sim.rng.stream("g"))
        gen.start()
        first_sends = sorted(
            flow._event.time for flow in gen.flows if flow._event
        )
        assert len(set(first_sends)) == 10  # no two start simultaneously


class TestUdpSink:
    def test_empty_sink_zero_throughput(self, lan):
        _sim, _a, b = lan
        sink = UdpSink(b, 6000)
        assert sink.throughput_bps() == 0.0

    def test_sink_close_unbinds(self, lan):
        sim, a, b = lan
        sink = UdpSink(b, 6000)
        sink.close()
        UdpEchoServer(b, port=6000)  # port must be free again
