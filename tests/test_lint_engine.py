"""Framework tests for the :mod:`repro.lint` engine.

Covers the plugin machinery itself — pragma handling, baseline
round-trips, rule scoping, and rule isolation (a crashing rule reports
an RL000 internal-error finding instead of killing the run) — plus the
seeded fixture in ``tests/data/lint_fixture.py`` that exercises every
built-in rule id.
"""

import pathlib

import pytest

from repro.lint import (
    Baseline, Finding, ProjectRule, RULES, Rule, load_baseline,
    register_rule, run_lint, save_baseline,
)
from repro.lint.pragmas import disabled_ids, has_obs_pragma
from repro.lint.registry import logical_parts

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
FIXTURE = REPO_ROOT / "tests" / "data" / "lint_fixture.py"

#: Every (line, rule) the seeded fixture must produce, in report order.
FIXTURE_EXPECTED = [
    (10, "RL102"),  # from random import randint
    (13, "RL201"),  # values=[] mutable default
    (14, "RL001"),  # unguarded metrics.inc
    (14, "RL106"),  # inline metric-name literal
    (15, "RL101"),  # time.time()
    (16, "RL102"),  # random.random()
    (17, "RL103"),  # schedule(-0.5, ...)
    (19, "RL102"),  # randint() call
    (20, "RL202"),  # bare except
    (22, "RL203"),  # print()
    (27, "RL002"),  # unused caller-guarded pragma
    (30, "RL202"),  # except Exception: pass
    (33, "RL203"),  # print survives a RL101-only disable
    (40, "RL104"),  # raw journal.write()
    (41, "RL104"),  # json.dump() into a checkpoint handle
    (46, "RL105"),  # sim._heap access outside the scheduler core
    (47, "RL105"),  # sim._wheel_cursor access outside the scheduler core
    (51, "RL107"),  # open() on a store path outside the home modules
    (52, "RL107"),  # .read_text() on a segment path
]


def lint_fixture(**kwargs):
    kwargs.setdefault("include_project_rules", False)
    return run_lint(FIXTURE, **kwargs)


class TestFixtureRulePack:
    def test_expected_rule_ids_in_order(self):
        result = lint_fixture()
        assert [(f.line, f.rule_id) for f in result.findings] \
            == FIXTURE_EXPECTED

    def test_multi_rule_pragma_on_one_line(self):
        """One line, two findings: disable=RL101,RL203 kills both;
        disable=RL101 leaves the RL203 finding alive."""
        result = lint_fixture()
        suppressed = {(f.line, f.rule_id) for f in result.suppressed}
        assert suppressed == {(32, "RL101"), (32, "RL203"), (33, "RL101")}
        assert (33, "RL203") in {(f.line, f.rule_id)
                                 for f in result.findings}

    def test_findings_carry_snippets_and_fingerprints(self):
        result = lint_fixture()
        by_rule = {f.rule_id: f for f in result.findings}
        assert "schedule(-0.5" in by_rule["RL103"].snippet
        assert len({f.fingerprint for f in result.findings}) \
            == len(result.findings)


class TestPragmas:
    @pytest.mark.parametrize("comment", [
        "# lint: disable=RL203",
        "#lint:disable=RL203",
        "#   lint:   disable   =   rl203",
        "# lint: disable=RL203 — deliberate, see docs",
        "# lint: disable=RL101,RL203 trailing words",
        "# lint: disable=all",
    ])
    def test_flexible_disable_forms(self, tmp_path, comment):
        path = tmp_path / "module.py"
        path.write_text(f"print('x')  {comment}\n", encoding="utf-8")
        result = run_lint(path, rules=[RULES["RL203"]],
                          include_project_rules=False)
        assert not result.findings
        assert [f.rule_id for f in result.suppressed] == ["RL203"]

    def test_disable_other_rule_does_not_suppress(self, tmp_path):
        path = tmp_path / "module.py"
        path.write_text("print('x')  # lint: disable=RL101\n",
                        encoding="utf-8")
        result = run_lint(path, rules=[RULES["RL203"]],
                          include_project_rules=False)
        assert [f.rule_id for f in result.findings] == ["RL203"]

    def test_malformed_pragma_ignored(self):
        assert disabled_ids("x = 1  # lint: disable=") == frozenset()
        assert disabled_ids("x = 1  # lint: disable=banana") == frozenset()
        assert disabled_ids("x = 1") == frozenset()

    @pytest.mark.parametrize("line", [
        "foo()  # obs: caller-guarded",
        "foo()  #obs:caller-guarded",
        "foo()  #  obs:  caller-guarded (guard lives in run())",
    ])
    def test_obs_pragma_flexible_forms(self, line):
        assert has_obs_pragma(line)

    def test_obs_pragma_requires_exact_words(self):
        assert not has_obs_pragma("foo()  # obs caller guarded")


class TestBaseline:
    def test_round_trip_suppresses_everything(self, tmp_path):
        result = lint_fixture()
        baseline = Baseline.from_findings(result.findings,
                                          reason="fixture grandfathering")
        path = tmp_path / "baseline.json"
        save_baseline(path, baseline)
        reloaded = load_baseline(path)
        assert len(reloaded.entries) == len(result.findings)
        assert all(entry.reason == "fixture grandfathering"
                   for entry in reloaded.entries)
        rebased = lint_fixture(baseline=reloaded)
        assert not rebased.findings
        assert len(rebased.baselined) == len(result.findings)
        assert not rebased.stale_baseline

    def test_stale_entries_surface_when_violation_fixed(self):
        result = lint_fixture()
        extra = Finding("RL203", "lint_fixture.py", 99,
                        "was fixed", snippet="print('gone')")
        baseline = Baseline.from_findings(result.findings + [extra])
        rebased = lint_fixture(baseline=baseline)
        assert not rebased.findings
        assert [entry.fingerprint for entry in rebased.stale_baseline] \
            == [extra.fingerprint]

    def test_multiset_matching_needs_one_entry_per_finding(self):
        result = lint_fixture()
        one_entry_each = Baseline.from_findings(result.findings[:1])
        rebased = lint_fixture(baseline=one_entry_each)
        assert len(rebased.baselined) == 1
        assert len(rebased.findings) == len(result.findings) - 1

    def test_version_check(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text('{"version": 99, "findings": []}',
                        encoding="utf-8")
        with pytest.raises(ValueError, match="version"):
            load_baseline(path)


class _CrashingRule(Rule):
    id = "RL998"
    description = "always crashes (test only)"

    def visit(self, tree, source, path):
        raise RuntimeError("kaboom")


class _CrashingProjectRule(ProjectRule):
    id = "RL997"
    description = "always crashes (test only)"

    def check(self, root):
        raise RuntimeError("project kaboom")


class TestRuleIsolation:
    def test_crashing_rule_reports_internal_error_finding(self):
        result = run_lint(FIXTURE,
                          rules=[_CrashingRule(), RULES["RL203"]],
                          include_project_rules=False)
        internal = [f for f in result.findings if f.rule_id == "RL000"]
        assert len(internal) == 1
        assert "RL998" in internal[0].message
        assert "kaboom" in internal[0].message
        # The other rule's findings are unaffected.
        assert [f.line for f in result.findings if f.rule_id == "RL203"] \
            == [22, 33]

    def test_crashing_project_rule_isolated(self):
        result = run_lint(FIXTURE,
                          rules=[_CrashingProjectRule(), RULES["RL203"]])
        internal = [f for f in result.findings if f.rule_id == "RL000"]
        assert len(internal) == 1
        assert "RL997" in internal[0].message

    def test_syntax_error_reports_internal_error(self, tmp_path):
        path = tmp_path / "broken.py"
        path.write_text("def f(:\n", encoding="utf-8")
        result = run_lint(path, include_project_rules=False)
        assert [f.rule_id for f in result.findings] == ["RL000"]
        assert "parse" in result.findings[0].message


class TestRegistryAndScoping:
    def test_duplicate_rule_id_rejected(self):
        class Duplicate(Rule):
            id = "RL001"

        with pytest.raises(ValueError, match="duplicate"):
            register_rule(Duplicate)

    def test_builtin_rule_ids(self):
        assert set(RULES) == {"RL001", "RL002", "RL101", "RL102",
                              "RL103", "RL104", "RL105", "RL106",
                              "RL107", "RL201", "RL202", "RL203",
                              "RL301"}

    def test_logical_parts_anchor_on_repro(self):
        assert logical_parts("/x/src/repro/sim/rng.py") == ("sim", "rng.py")
        assert logical_parts("/x/other/tree.py") is None

    def test_obs_package_excluded_from_obs_rules(self, tmp_path):
        module = tmp_path / "repro" / "obs" / "inner.py"
        module.parent.mkdir(parents=True)
        module.write_text("def f(m):\n    m.metrics.inc('x')\n",
                          encoding="utf-8")
        result = run_lint(tmp_path, rules=[RULES["RL001"]],
                          include_project_rules=False)
        assert not result.findings

    def test_sim_scoped_rule_skips_non_sim_packages(self, tmp_path):
        module = tmp_path / "repro" / "analysis" / "report2.py"
        module.parent.mkdir(parents=True)
        module.write_text("import time\nNOW = time.time()\n",
                          encoding="utf-8")
        result = run_lint(tmp_path, rules=[RULES["RL101"]],
                          include_project_rules=False)
        assert not result.findings

    def test_unanchored_tree_gets_every_rule(self, tmp_path):
        module = tmp_path / "anything.py"
        module.write_text("import time\nNOW = time.time()\n",
                          encoding="utf-8")
        result = run_lint(tmp_path, rules=[RULES["RL101"]],
                          include_project_rules=False)
        assert [f.rule_id for f in result.findings] == ["RL101"]

    def test_seeded_rng_facade_is_not_flagged(self):
        """random.Random(derived_seed) is the sanctioned construction."""
        result = run_lint(REPO_ROOT / "src" / "repro" / "sim" / "rng.py",
                          rules=[RULES["RL102"]],
                          include_project_rules=False)
        assert not result.findings

    def test_unseeded_random_constructor_flagged(self, tmp_path):
        module = tmp_path / "m.py"
        module.write_text("import random\nr = random.Random()\n",
                          encoding="utf-8")
        result = run_lint(module, rules=[RULES["RL102"]],
                          include_project_rules=False)
        assert [f.rule_id for f in result.findings] == ["RL102"]
        assert "unseeded" in result.findings[0].message
