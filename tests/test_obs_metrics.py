"""Unit tests for the observability layer: registry, spans, exporters."""

import json

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.obs import (
    DEFAULT_LATENCY_BUCKETS,
    MetricsRegistry,
    SpanTracker,
    merge_snapshots,
    span_metric_name,
    to_chrome_trace,
    to_jsonl,
    to_prometheus,
    write_chrome_trace,
    write_snapshot,
)
from repro.sim.trace import TraceRecorder


class TestCountersAndGauges:
    def test_counter_get_or_create_and_inc(self):
        registry = MetricsRegistry()
        registry.inc("events_total")
        registry.inc("events_total", 4)
        assert registry.counter("events_total").value == 5

    def test_labels_distinguish_series(self):
        registry = MetricsRegistry()
        registry.inc("hits", labels={"kind": "a"})
        registry.inc("hits", labels={"kind": "b"})
        registry.inc("hits", labels={"kind": "a"})
        assert registry.counter("hits", labels={"kind": "a"}).value == 2
        assert registry.counter("hits", labels={"kind": "b"}).value == 1

    def test_label_order_does_not_matter(self):
        registry = MetricsRegistry()
        registry.inc("x", labels={"a": 1, "b": 2})
        assert registry.get("x", labels={"b": 2, "a": 1}).value == 1

    def test_gauge_set(self):
        registry = MetricsRegistry()
        registry.set_gauge("clock", 1.5)
        registry.set_gauge("clock", 2.5)
        assert registry.gauge("clock").value == 2.5

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.inc("thing")
        with pytest.raises(TypeError):
            registry.gauge("thing")


class TestHistogram:
    def test_observe_buckets_and_stats(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat", buckets=(0.001, 0.01, 0.1))
        for value in (0.0005, 0.002, 0.05, 0.5):
            hist.observe(value)
        assert hist.counts == [1, 1, 1, 1]  # one overflow in +Inf
        assert hist.count == 4
        assert hist.minimum == 0.0005
        assert hist.maximum == 0.5
        assert hist.sum == pytest.approx(0.5525)

    def test_percentiles_interpolate_and_clamp(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat", buckets=(0.01, 0.1))
        for _ in range(100):
            hist.observe(0.05)
        # All mass in one bucket: estimates must stay inside [min, max].
        assert hist.p50 == pytest.approx(0.05)
        assert hist.p99 == pytest.approx(0.05)

    def test_empty_histogram_percentile_is_none(self):
        registry = MetricsRegistry()
        assert registry.histogram("lat").p50 is None
        assert registry.histogram("lat").mean is None

    def test_buckets_must_increase(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.histogram("bad", buckets=(0.1, 0.1))

    def test_default_buckets_cover_paper_delays(self):
        # Sub-ms driver costs through the ~102.4ms beacon interval.
        assert DEFAULT_LATENCY_BUCKETS[0] <= 1e-4
        assert any(0.1 <= b <= 0.15 for b in DEFAULT_LATENCY_BUCKETS)


class TestHistogramEdgeCases:
    """The audited corners: empty, single-observation, all-overflow."""

    def test_empty_every_stat_is_none_not_nan(self):
        hist = MetricsRegistry().histogram("lat", buckets=(0.01, 0.1))
        for stat in (hist.p50, hist.p95, hist.p99, hist.mean,
                     hist.minimum, hist.maximum):
            assert stat is None

    def test_empty_snapshot_and_prometheus_render(self):
        registry = MetricsRegistry()
        registry.histogram("lat", buckets=(0.01, 0.1))
        (entry,) = registry.snapshot()["metrics"]
        assert entry["count"] == 0 and entry["p50"] is None
        text = to_prometheus(registry.snapshot())
        assert 'lat_count 0' in text  # no division, no crash

    def test_single_observation_all_percentiles_exact(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat", buckets=(0.01, 0.1))
        hist.observe(0.042)
        for q in (0, 25, 50, 95, 99, 100):
            assert hist.percentile(q) == pytest.approx(0.042)
        assert hist.mean == pytest.approx(0.042)

    def test_all_observations_in_overflow_bucket(self):
        # Every value beyond the last finite bound: the legacy
        # fixed-bucket math had no upper edge to interpolate against;
        # the sketch answers within its relative-error bound and the
        # clamp keeps estimates inside [min, max].
        registry = MetricsRegistry()
        hist = registry.histogram("lat", buckets=(0.001, 0.01))
        for value in (0.5, 1.0, 2.0, 4.0):
            hist.observe(value)
        assert hist.counts == [0, 0, 4]
        assert 0.5 <= hist.p50 <= 4.0
        assert hist.p50 == pytest.approx(1.0, rel=0.01)
        assert hist.p99 == pytest.approx(4.0, rel=0.01)

    def test_merged_overflow_only_snapshots(self):
        registry_a, registry_b = MetricsRegistry(), MetricsRegistry()
        registry_a.observe("h", 5.0, buckets=(0.01,))
        registry_b.observe("h", 7.0, buckets=(0.01,))
        merged = merge_snapshots([registry_a.snapshot(),
                                  registry_b.snapshot()])
        (entry,) = merged["metrics"]
        assert entry["count"] == 2
        assert 5.0 <= entry["p50"] <= 7.0

    def test_snapshot_carries_sketch_payload(self):
        registry = MetricsRegistry()
        registry.observe("h", 0.02, buckets=(0.01, 0.1))
        (entry,) = registry.snapshot()["metrics"]
        sketch = entry["sketch"]
        assert sketch["bins"] and isinstance(sketch["bins"][0][1], int)
        json.dumps(entry)  # wire-format safe

    def test_merge_without_sketch_falls_back_to_buckets(self):
        # Pre-sketch snapshots (an old checkpoint journal) still merge;
        # percentiles come from the bucket interpolation fallback.
        registry_a, registry_b = MetricsRegistry(), MetricsRegistry()
        registry_a.observe("h", 0.005, buckets=(0.01, 0.1))
        registry_b.observe("h", 0.05, buckets=(0.01, 0.1))
        snaps = [registry_a.snapshot(), registry_b.snapshot()]
        for snap in snaps:
            for entry in snap["metrics"]:
                del entry["sketch"]
        merged = merge_snapshots(snaps)
        (entry,) = merged["metrics"]
        assert entry["count"] == 2
        assert "sketch" not in entry
        assert 0.0 <= entry["p50"] <= 0.1


class TestSnapshotAndMerge:
    def build(self):
        registry = MetricsRegistry()
        registry.inc("c_total", 3)
        registry.set_gauge("g", 7)
        registry.observe("h_seconds", 0.02, buckets=(0.01, 0.1))
        return registry

    def test_snapshot_is_json_ready_and_sorted(self):
        snap = self.build().snapshot()
        assert [e["name"] for e in snap["metrics"]] == \
            sorted(e["name"] for e in snap["metrics"])
        json.dumps(snap)  # must not raise

    def test_volatile_excluded_by_default(self):
        registry = self.build()
        registry.counter("wall_seconds", volatile=True).inc(0.5)
        names = {e["name"] for e in registry.snapshot()["metrics"]}
        assert "wall_seconds" not in names
        names = {e["name"]
                 for e in registry.snapshot(include_volatile=True)["metrics"]}
        assert "wall_seconds" in names

    def test_merge_sums_counters_and_buckets(self):
        a, b = self.build().snapshot(), self.build().snapshot()
        merged = merge_snapshots([a, b])
        by_name = {e["name"]: e for e in merged["metrics"]}
        assert by_name["c_total"]["value"] == 6
        assert by_name["g"]["value"] == 7  # gauge: last wins
        hist = by_name["h_seconds"]
        assert hist["count"] == 2
        assert hist["sum"] == pytest.approx(0.04)
        assert sum(hist["counts"]) == 2

    def test_merge_recomputes_percentiles(self):
        registry_a = MetricsRegistry()
        registry_b = MetricsRegistry()
        for _ in range(99):
            registry_a.observe("h", 0.005, buckets=(0.01, 0.1))
        registry_b.observe("h", 0.05, buckets=(0.01, 0.1))
        merged = merge_snapshots([registry_a.snapshot(),
                                  registry_b.snapshot()])
        (entry,) = merged["metrics"]
        assert entry["p50"] < 0.01  # median stays in the low bucket
        assert entry["max"] == 0.05

    def test_merge_rejects_bucket_mismatch(self):
        registry_a = MetricsRegistry()
        registry_b = MetricsRegistry()
        registry_a.observe("h", 0.005, buckets=(0.01,))
        registry_b.observe("h", 0.005, buckets=(0.02,))
        with pytest.raises(ValueError):
            merge_snapshots([registry_a.snapshot(), registry_b.snapshot()])

    def test_clear_resets_registry(self):
        registry = self.build()
        registry.clear()
        assert len(registry) == 0
        assert registry.snapshot() == {"metrics": []}


def _shard_registry(observations):
    """One registry holding a mixed counter/gauge/histogram population."""
    registry = MetricsRegistry()
    for value in observations:
        registry.inc("probes_total")
        registry.inc("bytes_total", int(value * 1e6), labels={"dir": "up"})
        registry.set_gauge("clock", value)
        registry.observe("lat_seconds", value, buckets=(0.01, 0.1))
        registry.observe("lat_seconds", value * 2,
                         labels={"leg": "wire"}, buckets=(0.01, 0.1))
    return registry


class TestMixedKindMergeProperty:
    """merge(shards) == merge(whole) for any partition of the stream."""

    @given(samples=st.lists(
        st.floats(min_value=1e-4, max_value=0.5,
                  allow_nan=False, allow_infinity=False),
        min_size=1, max_size=40), data=st.data())
    def test_any_partition_merges_to_the_whole(self, samples, data):
        cut = data.draw(st.integers(min_value=0, max_value=len(samples)))
        whole = merge_snapshots([_shard_registry(samples).snapshot()])
        shards = [_shard_registry(shard).snapshot()
                  for shard in (samples[:cut], samples[cut:]) if shard]
        merged = merge_snapshots(shards)
        # Gauges are last-wins, so shard order matters for them alone;
        # the final shard ends on the same observation as the whole.
        # Everything integer-state — counter values, bucket counts,
        # sketch bins, and the percentiles recomputed from them — is
        # EXACTLY partition-independent; the float ``sum`` accumulator
        # alone depends on addition order (to ~1 ulp).
        by_key = {(e["name"], tuple(sorted(e["labels"].items()))): e
                  for e in whole["metrics"]}
        assert len(merged["metrics"]) == len(by_key)
        for entry in merged["metrics"]:
            expected = by_key[(entry["name"],
                               tuple(sorted(entry["labels"].items())))]
            for field, value in expected.items():
                if field == "sum":
                    assert entry["sum"] == pytest.approx(value, rel=1e-12)
                else:
                    assert entry[field] == value, field

    def test_mixed_kinds_survive_one_round_trip(self):
        snapshot = _shard_registry([0.02, 0.2]).snapshot()
        merged = merge_snapshots(
            [json.loads(json.dumps(snapshot))])
        assert json.dumps(merged, sort_keys=True) \
            == json.dumps(merge_snapshots([snapshot]), sort_keys=True)


class TestSpanTracker:
    def build(self):
        metrics = MetricsRegistry()
        trace = TraceRecorder()
        return SpanTracker(metrics=metrics, trace=trace, enabled=True)

    def test_record_feeds_metrics_and_trace(self):
        spans = self.build()
        spans.record("sdio.promotion", 1.0, 1.012, bus="sdio0")
        hist = spans.metrics.get(span_metric_name("sdio.promotion"))
        assert hist.count == 1
        assert hist.sum == pytest.approx(0.012)
        (record,) = spans.trace.select(category="sdio")
        assert record.message == "span sdio.promotion"
        assert record.fields["duration"] == pytest.approx(0.012)

    def test_begin_end_and_discard(self):
        spans = self.build()
        token = spans.begin("psm.buffered", 0.5, aid=1)
        span = spans.end(token, 0.7, flushed=True)
        assert span.duration == pytest.approx(0.2)
        assert span.fields == {"aid": 1, "flushed": True}
        assert spans.end(token, 0.9) is None  # token already consumed
        other = spans.begin("psm.buffered", 1.0)
        spans.discard(other)
        assert spans.end(other, 2.0) is None
        assert len(spans) == 1

    def test_limit_counts_dropped(self):
        spans = SpanTracker(enabled=True, limit=2)
        for index in range(5):
            spans.record("x.y", index, index + 0.1)
        assert len(spans) == 2
        assert spans.dropped == 3
        spans.clear()
        assert len(spans) == 0 and spans.dropped == 0

    def test_category_is_first_dotted_component(self):
        spans = self.build()
        span = spans.record("measurement.probe", 0.0, 1.0)
        assert span.category == "measurement"
        assert spans.names() == ["measurement.probe"]


class TestExporters:
    def snapshot(self):
        registry = MetricsRegistry()
        registry.inc("c_total", 2, labels={"kind": "probe"})
        registry.set_gauge("g", 1.0)
        registry.observe("h_seconds", 0.02, buckets=(0.01, 0.1))
        registry.observe("h_seconds", 0.5, buckets=(0.01, 0.1))
        return registry.snapshot()

    def test_prometheus_cumulative_buckets(self):
        text = to_prometheus(self.snapshot())
        assert '# TYPE h_seconds histogram' in text
        assert 'c_total{kind="probe"} 2' in text
        assert 'h_seconds_bucket{le="0.01"} 0' in text
        assert 'h_seconds_bucket{le="0.1"} 1' in text
        assert 'h_seconds_bucket{le="+Inf"} 2' in text
        assert 'h_seconds_count 2' in text

    def test_label_values_escaped_golden(self):
        # Exposition format 0.0.4: backslash, double-quote and newline
        # are escaped in label values — nothing else is.
        registry = MetricsRegistry()
        registry.inc("odd_total", labels={
            "path": 'C:\\tmp\\"probe"\nnext',
            "plain": "ok-1.2/3",
        })
        text = to_prometheus(registry.snapshot())
        assert text == (
            '# TYPE odd_total counter\n'
            'odd_total{path="C:\\\\tmp\\\\\\"probe\\"\\nnext",'
            'plain="ok-1.2/3"} 1\n'
        )
        # Every line stays a single exposition line.
        assert len(text.splitlines()) == 2

    def test_jsonl_one_object_per_metric(self):
        lines = to_jsonl(self.snapshot()).strip().splitlines()
        assert len(lines) == 3
        assert all(json.loads(line)["name"] for line in lines)

    def test_chrome_trace_structure(self):
        spans = SpanTracker(enabled=True)
        spans.record("sdio.promotion", 0.001, 0.013, bus="sdio0")
        spans.record("psm.beacon_wait", 0.1, 0.2)
        trace = to_chrome_trace(spans)
        assert trace["displayTimeUnit"] == "ms"
        meta = [e for e in trace["traceEvents"] if e["ph"] == "M"]
        complete = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert {e["args"]["name"] for e in meta} == {"sdio", "psm"}
        assert len(complete) == 2
        promo = next(e for e in complete if e["name"] == "sdio.promotion")
        assert promo["ts"] == pytest.approx(1000.0)  # microseconds
        assert promo["dur"] == pytest.approx(12000.0)
        assert promo["args"]["bus"] == "sdio0"

    def test_write_snapshot_picks_format_by_suffix(self, tmp_path):
        snap = self.snapshot()
        prom = tmp_path / "metrics.prom"
        jsonl = tmp_path / "metrics.jsonl"
        assert write_snapshot(prom, snap) == "prometheus"
        assert write_snapshot(jsonl, snap) == "jsonl"
        assert "# TYPE" in prom.read_text()
        assert json.loads(jsonl.read_text().splitlines()[0])

    def test_write_chrome_trace_round_trips(self, tmp_path):
        spans = SpanTracker(enabled=True)
        spans.record("a.b", 0.0, 0.5)
        path = tmp_path / "trace.json"
        write_chrome_trace(path, spans)
        data = json.loads(path.read_text())
        assert data["traceEvents"]
