"""Tier-1 wiring for ``scripts/check_trace_guards.py``.

The lint enforces the guard discipline documented in
``docs/OBSERVABILITY.md``: every observability call site in ``src/``
sits behind an ``.enabled`` check (or carries the caller-guarded
pragma), so disabled observability costs one attribute check.  The
script is a thin wrapper over ``repro.lint`` rules RL001/RL002
(docs/STATIC_ANALYSIS.md); these tests pin the wrapper's legacy
behaviour, including flexible pragma spelling and unused-pragma
detection.
"""

import importlib.util
import pathlib

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
SCRIPT = REPO_ROOT / "scripts" / "check_trace_guards.py"


def _load():
    spec = importlib.util.spec_from_file_location("check_trace_guards",
                                                  SCRIPT)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_src_tree_has_no_unguarded_call_sites():
    lint = _load()
    violations = lint.find_violations(REPO_ROOT / "src")
    formatted = "\n".join(f"{path}:{lineno}: {line}"
                          for path, lineno, line in violations)
    assert not violations, f"unguarded observability call sites:\n{formatted}"


def test_main_exit_code_clean_tree():
    lint = _load()
    assert lint.main([str(REPO_ROOT / "src")]) == 0


def test_lint_catches_unguarded_call(tmp_path):
    bad = tmp_path / "pkg" / "module.py"
    bad.parent.mkdir()
    bad.write_text(
        "def f(sim):\n"
        "    sim.trace.record(sim.now, 'x', 'unguarded')\n"
        "    sim.metrics.inc('y_total')\n",
        encoding="utf-8")
    lint = _load()
    violations = lint.find_violations(tmp_path)
    assert len(violations) == 2
    assert lint.main([str(tmp_path)]) == 1


def test_lint_accepts_guard_and_pragma(tmp_path):
    good = tmp_path / "module.py"
    good.write_text(
        "def f(sim):\n"
        "    if sim.trace.enabled:\n"
        "        sim.trace.record(sim.now, 'x', 'guarded')\n"
        "    sim.metrics.inc('y_total')  # obs: caller-guarded\n",
        encoding="utf-8")
    lint = _load()
    assert lint.find_violations(tmp_path) == []


def test_pragma_recognised_with_flexible_spelling(tmp_path):
    """Whitespace and trailing rationale text don't defeat the pragma."""
    good = tmp_path / "module.py"
    good.write_text(
        "def f(sim):\n"
        "    sim.metrics.inc('a_total')  #obs:caller-guarded\n"
        "    sim.metrics.inc('b_total')  #   obs:   caller-guarded\n"
        "    sim.metrics.inc('c_total')  # obs: caller-guarded — "
        "guard lives in run()\n",
        encoding="utf-8")
    lint = _load()
    assert lint.find_violations(tmp_path) == []


def test_unused_pragma_is_flagged(tmp_path):
    """A caller-guarded pragma on a line with no observability call is
    rot (RL002) and fails the wrapper like an unguarded call would."""
    stale = tmp_path / "module.py"
    stale.write_text(
        "def f(sim):\n"
        "    x = 1  # obs: caller-guarded\n"
        "    return x\n",
        encoding="utf-8")
    lint = _load()
    violations = lint.find_violations(tmp_path)
    assert [(line, text) for _, line, text in violations] \
        == [(2, "x = 1  # obs: caller-guarded")]
    assert lint.main([str(tmp_path)]) == 1
