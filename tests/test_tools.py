"""Tests for the baseline measurement tools (ping, httping, Java ping,
MobiPerf, ping2)."""

import pytest

from repro.core.measurement import ProbeCollector
from repro.testbed.topology import Testbed
from repro.tools.httping import HttpingTool
from repro.tools.javaping import JavaPingTool
from repro.tools.mobiperf import MobiPerfTool
from repro.tools.ping import PingTool
from repro.tools.ping2 import Ping2Tool


def build(seed=41, rtt=0.03, phone_key="nexus5"):
    testbed = Testbed(seed=seed, emulated_rtt=rtt)
    phone = testbed.add_phone(phone_key)
    collector = ProbeCollector(phone)
    testbed.settle(0.5)
    return testbed, phone, collector


class TestPingTool:
    def test_fixed_rate_sending(self):
        testbed, phone, collector = build()
        tool = PingTool(phone, collector, testbed.server_ip, interval=0.01)
        samples = tool.run_sync(20)
        assert len(samples) == 20
        sends = sorted(s.sent_at for s in samples)
        gaps = [b - a for a, b in zip(sends, sends[1:])]
        assert all(g == pytest.approx(0.01, abs=1e-4) for g in gaps)

    def test_rtts_near_emulated_at_fast_interval(self):
        testbed, phone, collector = build()
        tool = PingTool(phone, collector, testbed.server_ip, interval=0.01)
        tool.run_sync(20)
        rtts = sorted(tool.rtts())
        # The very first probe may pay one bus wake (the phone idled
        # before the run); steady state stays close to the emulated RTT.
        assert all(0.030 < rtt < 0.040 for rtt in rtts[:-1])
        assert rtts[-1] < 0.050

    def test_slow_interval_inflates_via_bus_sleep(self):
        testbed, phone, collector = build()
        tool = PingTool(phone, collector, testbed.server_ip, interval=1.0)
        tool.run_sync(10)
        # Nexus 5, 30 ms < Tip (205 ms) so no PSM hit, but every probe pays
        # the SDIO wake (Table 2's 43 ms vs 33 ms at small intervals).
        assert min(tool.rtts()) > 0.038

    def test_user_times_reported_to_collector(self):
        testbed, phone, collector = build()
        tool = PingTool(phone, collector, testbed.server_ip, interval=0.01)
        tool.run_sync(5)
        records = collector.completed()
        assert len(records) == 5
        assert all(r.du is not None and r.du > 0 for r in records)

    def test_integer_quirk_on_nexus4_above_100ms(self):
        testbed, phone, collector = build(phone_key="nexus4", rtt=0.150)
        tool = PingTool(phone, collector, testbed.server_ip, interval=0.01)
        tool.run_sync(10)
        for rtt in tool.rtts():
            ms_value = rtt * 1e3
            assert ms_value == pytest.approx(round(ms_value), abs=1e-6)

    def test_no_quirk_below_100ms(self):
        testbed, phone, collector = build(phone_key="nexus4", rtt=0.030)
        tool = PingTool(phone, collector, testbed.server_ip, interval=0.01)
        tool.run_sync(5)
        assert any(abs(r * 1e3 - round(r * 1e3)) > 1e-6 for r in tool.rtts())

    def test_unreachable_target_times_out(self):
        from repro.net.addresses import ip

        testbed, phone, collector = build()
        tool = PingTool(phone, collector, ip("10.0.0.99"), interval=0.05,
                        timeout=0.3)
        samples = tool.run_sync(3)
        assert tool.loss_count() == 3
        assert len(samples) == 3

    def test_runtime_restored_after_run(self):
        testbed, phone, collector = build()
        phone.runtime = "dalvik"
        tool = PingTool(phone, collector, testbed.server_ip, interval=0.01)
        tool.run_sync(3)
        assert phone.runtime == "dalvik"


class TestHttpingTool:
    def test_sequential_probes_on_persistent_connection(self):
        testbed, phone, collector = build()
        tool = HttpingTool(phone, collector, testbed.server_ip,
                           interval=0.05)
        samples = tool.run_sync(10)
        assert len(samples) == 10
        assert tool.loss_count() == 0
        # Request/response time: one RTT + server processing.
        for rtt in tool.rtts():
            assert 0.030 < rtt < 0.045

    def test_only_one_tcp_connection_used(self):
        testbed, phone, collector = build()
        tool = HttpingTool(phone, collector, testbed.server_ip,
                           interval=0.02)
        tool.run_sync(10)
        assert testbed.server.http.requests_served == 10

    def test_interval_respected(self):
        testbed, phone, collector = build()
        tool = HttpingTool(phone, collector, testbed.server_ip, interval=0.2)
        samples = tool.run_sync(5)
        sends = [s.sent_at for s in samples]
        for a, b in zip(sends, sends[1:]):
            assert b - a >= 0.19


class TestJavaPingTool:
    def test_syn_rst_measurement(self):
        testbed, phone, collector = build()
        tool = JavaPingTool(phone, collector, testbed.server_ip,
                            interval=0.05)
        samples = tool.run_sync(10)
        assert len(samples) == 10
        assert tool.loss_count() == 0

    def test_dalvik_overhead_visible(self):
        testbed, phone, collector = build()
        java = JavaPingTool(phone, collector, testbed.server_ip,
                            interval=0.01)
        java.run_sync(30)
        records = collector.completed()
        du_k = [r.du - r.dk for r in records if r.dk is not None]
        # Dalvik adds two runtime crossings; the median must exceed what a
        # native tool would show (~0.1 ms).
        du_k.sort()
        assert du_k[len(du_k) // 2] > 0.4e-3

    def test_open_port_syn_ack_also_works(self):
        testbed, phone, collector = build()
        tool = JavaPingTool(phone, collector, testbed.server_ip, port=80,
                            interval=0.05)
        samples = tool.run_sync(5)
        assert tool.loss_count() == 0


class TestMobiPerf:
    def test_method_validation(self):
        testbed, phone, collector = build()
        with pytest.raises(ValueError):
            MobiPerfTool(phone, collector, testbed.server_ip, method="warp")

    @pytest.mark.parametrize("method", ["ping", "inetaddress", "httpurl"])
    def test_all_methods_measure(self, method):
        testbed, phone, collector = build()
        tool = MobiPerfTool(phone, collector, testbed.server_ip,
                            method=method, interval=0.05)
        tool.run_sync(5)
        assert len(tool.rtts()) == 5
        assert tool.loss_count() == 0


class TestPing2:
    def test_double_ping_short_rtt_accurate(self):
        # Short path: the warm-up ping leaves everything awake; the probe
        # ping is clean.
        testbed, phone, _collector = build(rtt=0.02)
        tool = Ping2Tool(testbed.server_host, phone.ip_addr, interval=0.5)
        tool.run_sync(10)
        assert len(tool.rtts()) == 10
        import statistics

        median = statistics.median(tool.rtts())
        assert 0.020 < median < 0.030

    def test_first_ping_pays_wakeup(self):
        testbed, phone, _collector = build(rtt=0.02)
        tool = Ping2Tool(testbed.server_host, phone.ip_addr, interval=1.0)
        tool.run_sync(8)
        import statistics

        first = statistics.median(tool.first_ping_rtts)
        second = statistics.median(tool.rtts())
        assert first > second + 0.005  # warm-up absorbs the inflation

    def test_long_rtt_degrades(self):
        # RTT 80 ms > Tis (50 ms): by the time the probe ping arrives the
        # bus has demoted again — ping2's documented failure mode.
        testbed, phone, _collector = build(rtt=0.080, seed=43)
        tool = Ping2Tool(testbed.server_host, phone.ip_addr, interval=1.0)
        tool.run_sync(8)
        import statistics

        median = statistics.median(tool.rtts())
        assert median > 0.088  # inflated beyond the true 80 ms + stack cost
