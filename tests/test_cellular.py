"""Tests for the cellular RRC extension (paper §4's stated extension)."""

import statistics

import pytest

from repro.cellular.rrc import RrcConfig, RrcMachine, RrcState
from repro.cellular.testbed import CellularTestbed
from repro.core.acutemon import AcuteMon, AcuteMonConfig
from repro.core.measurement import ProbeCollector
from repro.core.warmup import WarmupPolicy
from repro.sim.scheduler import Simulator
from repro.tools.ping import PingTool


class TestRrcMachine:
    def _machine(self, seed=1, **config_kwargs):
        sim = Simulator(seed=seed)
        machine = RrcMachine(sim, config=RrcConfig(**config_kwargs))
        return sim, machine

    def test_starts_idle(self):
        _sim, machine = self._machine()
        assert machine.state == RrcState.IDLE

    def test_promotion_from_idle_takes_seconds(self):
        sim, machine = self._machine()
        granted = []
        machine.request_channel(100, lambda: granted.append(sim.now))
        sim.run(until=5.0)
        assert machine.state == RrcState.DCH
        assert 1.6 <= granted[0] <= 2.6  # promo_idle_dch range

    def test_dch_grants_immediately(self):
        sim, machine = self._machine()
        machine.request_channel(100, lambda: None)
        sim.run(until=3.0)
        granted = []
        machine.request_channel(100, lambda: granted.append(sim.now))
        assert granted == [sim.now]

    def test_t1_demotes_to_fach_then_t2_to_idle(self):
        sim, machine = self._machine(t1=5.0, t2=12.0)
        machine.request_channel(100, lambda: None)
        sim.run(until=3.0)
        assert machine.state == RrcState.DCH
        sim.run(until=3.0 + 5.5)
        assert machine.state == RrcState.FACH
        sim.run(until=3.0 + 5.5 + 12.5)
        assert machine.state == RrcState.IDLE
        assert machine.demotions == 2

    def test_activity_resets_tail_timer(self):
        sim, machine = self._machine(t1=5.0)
        machine.request_channel(100, lambda: None)
        sim.run(until=3.0)
        for index in range(5):
            sim.schedule(index * 3.0, machine.touch)
        sim.run(until=17.0)
        assert machine.state == RrcState.DCH

    def test_small_transfer_allowed_in_fach(self):
        sim, machine = self._machine(t1=1.0, fach_threshold=400)
        machine.request_channel(100, lambda: None)
        sim.run(until=4.0)
        assert machine.state == RrcState.FACH
        granted = []
        machine.request_channel(100, lambda: granted.append(machine.state))
        assert granted == [RrcState.FACH]  # no promotion needed

    def test_large_transfer_in_fach_promotes(self):
        sim, machine = self._machine(t1=1.0, fach_threshold=400)
        machine.request_channel(100, lambda: None)
        sim.run(until=4.0)
        assert machine.state == RrcState.FACH
        granted = []
        machine.request_channel(1200, lambda: granted.append(machine.state))
        sim.run(until=8.0)
        assert granted == [RrcState.DCH]

    def test_fach_latency_higher_than_dch(self):
        sim, machine = self._machine()
        machine._set_state(RrcState.DCH, "test")
        dch = statistics.mean(machine.latency() for _ in range(200))
        machine._set_state(RrcState.FACH, "test")
        fach = statistics.mean(machine.latency() for _ in range(200))
        assert fach > 3 * dch

    def test_concurrent_requests_share_one_promotion(self):
        sim, machine = self._machine()
        granted = []
        machine.request_channel(100, lambda: granted.append("a"))
        machine.request_channel(100, lambda: granted.append("b"))
        sim.run(until=5.0)
        assert granted == ["a", "b"]
        assert machine.promotions == 1

    def test_state_transitions_recorded(self):
        sim, machine = self._machine(t1=1.0)
        machine.request_channel(100, lambda: None)
        sim.run(until=4.5)
        kinds = [(old, new) for _t, old, new, _r in machine.state_transitions]
        assert (RrcState.IDLE, RrcState.DCH) in kinds
        assert (RrcState.DCH, RrcState.FACH) in kinds


class TestCellularPath:
    def test_ping_round_trip(self):
        testbed = CellularTestbed(seed=3, emulated_rtt=0.05)
        phone = testbed.phone
        replies = []
        phone.stack.register_ping(1, lambda p: replies.append(testbed.sim.now))
        phone.stack.send_echo_request(testbed.server_ip, 1, 1)
        testbed.run(10.0)
        assert len(replies) == 1

    def test_first_packet_pays_promotion(self):
        testbed = CellularTestbed(seed=3, emulated_rtt=0.05)
        phone = testbed.phone
        collector = ProbeCollector(phone)
        tool = PingTool(phone, collector, testbed.server_ip, interval=0.5,
                        timeout=5.0)
        samples = tool.run_sync(5)
        by_send_order = sorted(samples, key=lambda s: s.sent_at)
        # The first-sent probe triggers (and waits out) the IDLE->DCH
        # promotion; probes sent during the promotion inflate less, and
        # probes sent after it ride a clean DCH.
        assert by_send_order[0].rtt > 1.5
        assert by_send_order[-1].rtt < 0.3

    def test_sparse_probing_pays_promotion_every_time(self):
        config = RrcConfig(t1=5.0, t2=12.0)
        testbed = CellularTestbed(seed=4, emulated_rtt=0.05,
                                  rrc_config=config)
        phone = testbed.phone
        collector = ProbeCollector(phone)
        # 20 s between probes > t1 + t2: the phone is IDLE for every one.
        tool = PingTool(phone, collector, testbed.server_ip, interval=20.0,
                        timeout=8.0)
        tool.run_sync(4)
        assert all(r > 1.5 for r in tool.rtts())
        assert testbed.rrc.promotions >= 4

    def test_downlink_to_idle_phone_pays_paging(self):
        testbed = CellularTestbed(seed=5, emulated_rtt=0.0)
        phone = testbed.phone
        got = []
        phone.stack.udp_bind(4444, lambda p: got.append(testbed.sim.now))
        testbed.run(1.0)  # phone is IDLE (never transmitted)
        t0 = testbed.sim.now
        testbed.server_host.stack.send_udp(phone.ip_addr, 4444,
                                           payload_size=16)
        testbed.run(6.0)
        assert got and got[0] - t0 > 1.5  # paging + promotion
        assert testbed.tower.packets_paged == 1

    def test_ttl1_warmups_die_at_tower(self):
        testbed = CellularTestbed(seed=6)
        phone = testbed.phone
        errors = []
        phone.stack.add_icmp_error_handler(errors.append)
        phone.stack.send_udp(testbed.server_ip, 33434, payload_size=8, ttl=1)
        testbed.run(6.0)
        assert testbed.tower.router.packets_expired == 1
        assert len(errors) == 1


class TestAcuteMonOnCellular:
    def test_warmup_policy_maps_to_rrc_timers(self):
        config = RrcConfig()
        policy = WarmupPolicy(
            t_prom=config.promo_idle_dch.high,
            t_is=config.t1, t_ip=config.t1,
        )
        plan = policy.recommend()
        assert plan.valid
        assert plan.dpre > config.promo_idle_dch.high
        assert plan.db < config.t1

    def test_acutemon_punctures_rrc_inflation(self):
        config = RrcConfig(t1=5.0, t2=12.0)
        testbed = CellularTestbed(seed=7, emulated_rtt=0.05,
                                  rrc_config=config)
        phone = testbed.phone
        collector = ProbeCollector(phone)
        # Cellular plan: dpre > promotion (~2.6 s), db < t1.
        acute_config = AcuteMonConfig(dpre=3.0, db=2.0, probe_count=10,
                                      probe_gap=4.0, probe_timeout=8.0)
        monitor = AcuteMon(phone, collector, testbed.server_ip,
                           config=acute_config)
        done = []
        monitor.start(on_complete=lambda r: done.append(r))
        while not done:
            assert testbed.sim.step()
        rtts = monitor.rtts()
        assert len(rtts) == 10
        # Probes 4 s apart would each pay FACH/DCH transitions without the
        # background traffic; with it, every RTT is a clean DCH RTT.
        assert all(r < 0.3 for r in rtts)
        assert statistics.median(rtts) < 0.2

    def test_without_background_sparse_probes_inflate(self):
        config = RrcConfig(t1=2.0, t2=6.0)
        testbed = CellularTestbed(seed=8, emulated_rtt=0.05,
                                  rrc_config=config)
        phone = testbed.phone
        collector = ProbeCollector(phone)
        acute_config = AcuteMonConfig(
            dpre=3.0, db=2.0, probe_count=6, probe_gap=4.0,
            probe_timeout=8.0, warmup_enabled=False,
            background_enabled=False,
        )
        monitor = AcuteMon(phone, collector, testbed.server_ip,
                           config=acute_config)
        done = []
        monitor.start(on_complete=lambda r: done.append(r))
        while not done:
            assert testbed.sim.step()
        # Probe gap (4 s) > t1 (2 s): probes after the first keep finding
        # the radio demoted to FACH (RTT dominated by the shared-channel
        # latency, several times a clean DCH RTT).
        inflated = [r for r in monitor.rtts() if r > 0.3]
        assert len(inflated) >= 3
