"""Integration tests pinning the paper's qualitative results.

These are the "does the reproduction actually reproduce" tests: each one
asserts a *shape* from the paper's evaluation — who inflates, by roughly
what magnitude, and what AcuteMon fixes — using reduced probe counts so
the suite stays fast.  The benchmarks regenerate the full tables.
"""

import statistics

import pytest

from repro.analysis.cdf import Cdf
from repro.core.overhead import decompose
from repro.testbed.experiments import (
    acutemon_experiment,
    ping2_experiment,
    ping_experiment,
    tool_comparison,
)


def mean_ms(values):
    return statistics.mean(values) * 1e3


class TestTable2Shapes:
    """Multi-layer ping RTTs, §3.1."""

    def test_nexus5_small_interval_accurate(self):
        result = ping_experiment("nexus5", emulated_rtt=0.03, interval=0.01,
                                 count=30, seed=101)
        assert mean_ms(result.layers["du"]) == pytest.approx(33.4, abs=2.0)
        assert mean_ms(result.layers["dn"]) == pytest.approx(31.2, abs=2.0)

    def test_nexus5_1s_interval_inflates_internally(self):
        result = ping_experiment("nexus5", emulated_rtt=0.03, interval=1.0,
                                 count=30, seed=102)
        du = mean_ms(result.layers["du"])
        dn = mean_ms(result.layers["dn"])
        # Paper: du ~43 ms while dn stays ~31 ms — inflation is *internal*.
        assert 38 < du < 50
        assert dn == pytest.approx(31, abs=2.5)

    def test_nexus5_60ms_1s_two_wakes(self):
        # RTT (60 ms) > Tis (50 ms): both directions pay the bus wake
        # (paper: du ~82 ms vs dn ~62 ms).
        result = ping_experiment("nexus5", emulated_rtt=0.06, interval=1.0,
                                 count=30, seed=103)
        internal = (mean_ms(result.layers["du"])
                    - mean_ms(result.layers["dn"]))
        assert 13 < internal < 28

    def test_nexus4_60ms_1s_inflates_in_network(self):
        # Tip (40 ms) < RTT (60 ms): responses hit power-save buffering,
        # so dn itself inflates (paper: dn ~130 ms for emulated 60 ms).
        result = ping_experiment("nexus4", emulated_rtt=0.06, interval=1.0,
                                 count=30, seed=104)
        dn = mean_ms(result.layers["dn"])
        assert dn > 90

    def test_nexus4_30ms_partial_psm(self):
        # Emulated 30 ms sits just under the jittery ~40 ms Tip: a fraction
        # of probes get beacon-buffered, inflating the mean dn a little.
        result = ping_experiment("nexus4", emulated_rtt=0.03, interval=1.0,
                                 count=60, seed=105)
        dn = mean_ms(result.layers["dn"])
        assert 32 < dn < 70

    def test_nexus4_internal_inflation_smaller_than_nexus5(self):
        n4 = ping_experiment("nexus4", emulated_rtt=0.03, interval=1.0,
                             count=30, seed=106)
        n5 = ping_experiment("nexus5", emulated_rtt=0.03, interval=1.0,
                             count=30, seed=106)
        internal_n4 = mean_ms(n4.layers["du"]) - mean_ms(n4.layers["dn"])
        internal_n5 = mean_ms(n5.layers["du"]) - mean_ms(n5.layers["dn"])
        # Qualcomm's SMD wake (~2 ms) vs Broadcom's SDIO wake (~10 ms).
        assert internal_n4 < internal_n5

    def test_dk_tracks_du(self):
        # tcpdump (dk) sits within ~1 ms of the app-level du (Table 2).
        result = ping_experiment("nexus5", emulated_rtt=0.03, interval=1.0,
                                 count=30, seed=107)
        assert abs(mean_ms(result.layers["du"])
                   - mean_ms(result.layers["dk"])) < 1.0


class TestTable3Shapes:
    """Driver instrumentation: dvsend/dvrecv vs bus sleep."""

    def _driver_stats(self, bus_sleep, interval, rtt=0.06):
        # RTT 60 ms > Tis (50 ms) so that the receive path also finds the
        # bus asleep, matching Table 3's dvrecv wake costs.
        result = ping_experiment("nexus5", emulated_rtt=rtt,
                                 interval=interval, count=40, seed=111,
                                 bus_sleep=bus_sleep)
        driver = result.phone.driver
        return (statistics.mean(driver.samples_of("send")) * 1e3,
                statistics.mean(driver.samples_of("recv")) * 1e3)

    def test_sleep_enabled_1s_interval_pays_wake(self):
        dvsend, dvrecv = self._driver_stats(bus_sleep=True, interval=1.0)
        assert dvsend > 7  # paper: mean 10.15 ms
        assert dvrecv > 7  # paper: mean 12.75 ms

    def test_rx_wake_needs_rtt_beyond_idle_window(self):
        # At RTT 30 ms < Tis the response finds the bus still awake: only
        # the send direction pays (Table 2's one-wake vs two-wake split).
        _dvsend, dvrecv = self._driver_stats(bus_sleep=True, interval=1.0,
                                             rtt=0.03)
        assert dvrecv < 3.0

    def test_sleep_enabled_fast_interval_cheap(self):
        dvsend, dvrecv = self._driver_stats(bus_sleep=True, interval=0.01)
        assert dvsend < 1.5  # paper: mean 0.32 ms
        assert dvrecv < 3.0  # paper: mean 1.63 ms

    def test_sleep_disabled_always_cheap(self):
        dvsend, dvrecv = self._driver_stats(bus_sleep=False, interval=1.0)
        assert dvsend < 1.5  # paper: mean 0.72 ms
        assert dvrecv < 3.0  # paper: mean 1.76 ms


class TestAcuteMonShapes:
    """Table 5 / Figure 7: AcuteMon accuracy."""

    @pytest.mark.parametrize("phone_key", ["nexus5", "nexus4", "htc_one",
                                           "xperia_j", "galaxy_grand"])
    def test_dn_accurate_on_every_phone(self, phone_key):
        result = acutemon_experiment(phone_key, emulated_rtt=0.05, count=25,
                                     seed=121)
        dn = mean_ms(result.layers["dn"])
        # Table 5: dn within ~3 ms of the emulated value on every phone.
        assert dn == pytest.approx(51, abs=3.0)

    def test_median_overhead_within_3ms_regardless_of_rtt(self):
        for rtt in (0.020, 0.085, 0.135):
            result = acutemon_experiment("nexus5", emulated_rtt=rtt,
                                         count=25, seed=122)
            overheads = decompose(result.collector.completed())
            assert overheads.box("total").median < 0.0035, rtt

    def test_du_k_small_with_native_runtime(self):
        result = acutemon_experiment("galaxy_grand", emulated_rtt=0.05,
                                     count=25, seed=123)
        overheads = decompose(result.collector.completed())
        assert overheads.box("du_k").median < 0.001  # paper: < 1 ms

    def test_no_psm_activity_during_measurement(self):
        result = acutemon_experiment("nexus4", emulated_rtt=0.135, count=25,
                                     seed=124)
        # Compare with Table 2: without AcuteMon this cell inflates by
        # tens of ms; with it dn is clean even though RTT >> Tip.
        assert mean_ms(result.layers["dn"]) == pytest.approx(136, abs=3.5)


class TestFigure8Shapes:
    """Tool comparison CDFs."""

    def test_acutemon_beats_other_tools_by_10ms(self):
        results = tool_comparison("nexus5", emulated_rtt=0.03, count=20,
                                  seed=131)
        acute = Cdf(results["acutemon"])
        for other in ("ping", "httping", "javaping"):
            gap = Cdf(results[other]).median - acute.median
            assert gap > 0.008, other  # paper: "almost larger than 10ms"

    def test_acutemon_90th_percentile_under_35ms(self):
        results = tool_comparison("nexus5", emulated_rtt=0.03, count=30,
                                  seed=132, tools=("acutemon",))
        cdf = Cdf(results["acutemon"])
        assert cdf.quantile(0.9) < 0.035  # paper: ~90% below 35 ms


class TestPing2Shapes:
    """The prior-art baseline's crossover (§1)."""

    def test_ping2_fine_at_short_rtt_poor_at_long(self):
        short = ping2_experiment("nexus5", emulated_rtt=0.02,
                                 count=10, seed=141)
        long = ping2_experiment("nexus5", emulated_rtt=0.08,
                                count=10, seed=141)
        short_err = statistics.median(short.tool.rtts()) - 0.02
        long_err = statistics.median(long.tool.rtts()) - 0.08
        assert short_err < 0.006
        assert long_err > short_err + 0.004

    def test_acutemon_stays_accurate_where_ping2_fails(self):
        rtt = 0.08
        ping2 = ping2_experiment("nexus5", emulated_rtt=rtt,
                                 count=10, seed=142)
        acute = acutemon_experiment("nexus5", emulated_rtt=rtt, count=10,
                                    seed=142)
        ping2_err = statistics.median(ping2.tool.rtts()) - rtt
        acute_err = statistics.median(acute.user_rtts) - rtt
        assert acute_err < ping2_err
