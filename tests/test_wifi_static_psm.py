"""Tests for static (legacy) PSM and the RTT round-up effect (§3.2.2).

The paper: "static PSM could lead to RTT round-up effect and degrade
network performance [19], [so] adaptive PSM is usually adopted by
smartphones today."  This mode exists to reproduce that contrast.
"""

import statistics

import pytest

from repro.net.addresses import ip
from repro.sim.units import tu
from repro.wifi.frames import PsPollFrame
from repro.wifi.sta import MODE_STATIC, PowerState, PsmConfig
from tests.conftest import make_wifi_cell


def make_static_host(sim, listen_interval=0):
    psm = PsmConfig(enabled=True, timeout=0.2, mode=MODE_STATIC,
                    listen_interval=listen_interval)
    channel, ap, server, hosts = make_wifi_cell(sim, psm=psm)
    return channel, ap, server, hosts[0]


class TestStaticMode:
    def test_mode_validated(self):
        with pytest.raises(ValueError):
            PsmConfig(mode="hybrid")
        assert PsmConfig(mode=MODE_STATIC).is_static
        assert not PsmConfig().is_static

    def test_dozes_immediately_after_exchange(self, sim):
        _channel, _ap, _server, host = make_static_host(sim)
        host.stack.send_echo_request(ip("10.0.0.2"), 1, 1)
        # Well before any adaptive timeout would fire, the station is PS.
        sim.run(until=0.02)
        assert host.sta.power_state == PowerState.DOZE

    def test_uplink_data_carries_pm_bit(self, sim):
        channel, _ap, _server, host = make_static_host(sim)
        pm_bits = []
        channel.add_monitor(
            lambda f, ts, te, st: pm_bits.append(f.pm)
            if type(f).__name__ == "DataFrame"
            and f.src_mac == host.sta.mac else None)
        host.stack.send_echo_request(ip("10.0.0.2"), 1, 1)
        sim.run(until=0.5)
        assert pm_bits and all(pm_bits)

    def test_ap_keeps_buffering_despite_uplink(self, sim):
        _channel, ap, _server, host = make_static_host(sim)
        host.stack.send_echo_request(ip("10.0.0.2"), 1, 1)
        sim.run(until=0.01)
        record = ap.station_record(host.sta.mac)
        assert record.asleep  # the PM=1 data frame kept the PS view

    def test_response_retrieved_via_ps_poll(self, sim):
        channel, _ap, _server, host = make_static_host(sim)
        polls = []
        channel.add_monitor(
            lambda f, ts, te, st: polls.append(ts)
            if isinstance(f, PsPollFrame) else None)
        replies = []
        host.stack.register_ping(1, lambda p: replies.append(sim.now))
        host.stack.send_echo_request(ip("10.0.0.2"), 1, 1)
        sim.run(until=0.5)
        assert replies, "echo reply must eventually arrive"
        assert polls, "retrieval must use PS-Poll"
        assert host.sta.ps_polls_sent >= 1

    def test_rtt_round_up_effect(self, sim):
        # The defining symptom: RTTs quantise up to the beacon schedule
        # even on a fast path.
        _channel, ap, _server, host = make_static_host(sim)
        rtts = []
        pending = {}
        beacon_interval = tu(ap.beacon_interval_tu)

        def on_reply(packet):
            rtts.append(sim.now - pending.pop(packet.payload.seq))

        host.stack.register_ping(1, on_reply)

        def send(seq):
            pending[seq] = sim.now
            host.stack.send_echo_request(ip("10.0.0.2"), 1, seq)

        for index in range(10):
            sim.schedule(index * 0.5, send, index)
        sim.run(until=6.0)
        assert len(rtts) == 10
        # Path RTT is ~1 ms, yet every measured RTT is dominated by the
        # wait for the next beacon: tens of ms, bounded by one interval.
        assert statistics.mean(rtts) > 0.02
        assert max(rtts) <= beacon_interval + 0.02
        assert min(rtts) > 0.002

    def test_multiple_buffered_frames_polled_one_by_one(self, sim):
        _channel, ap, server, host = make_static_host(sim)
        got = []
        host.stack.udp_bind(4444, got.append)
        # Force doze, then queue three downlink datagrams.
        host.stack.send_echo_request(ip("10.0.0.2"), 1, 1)
        sim.run(until=0.3)
        for _ in range(3):
            server.stack.send_udp(host.ip_addr, 4444, payload_size=16)
        sim.run(until=1.0)
        assert len(got) == 3
        # One PS-Poll per buffered frame (plus the ping-reply retrieval).
        assert host.sta.ps_polls_sent >= 3

    def test_static_vs_adaptive_rtt_contrast(self, sim):
        # Same path, same probing pattern, wildly different answers —
        # the paper's motivation for studying the PSM flavour in use.
        from repro.sim.scheduler import Simulator

        def median_rtt(mode):
            local_sim = Simulator(seed=5)
            if mode == "static":
                psm = PsmConfig(enabled=True, timeout=0.2, mode=MODE_STATIC)
            else:
                psm = PsmConfig(enabled=True, timeout=0.2)
            _c, _a, _s, hosts = make_wifi_cell(local_sim, psm=psm)
            host = hosts[0]
            rtts = []
            pending = {}
            host.stack.register_ping(
                1, lambda p: rtts.append(local_sim.now - pending.pop(p.payload.seq)))
            for index in range(8):
                def send(seq=index):
                    pending[seq] = local_sim.now
                    host.stack.send_echo_request(ip("10.0.0.2"), 1, seq)
                local_sim.schedule(index * 0.5, send)
            local_sim.run(until=5.0)
            return statistics.median(rtts)

        assert median_rtt("static") > 10 * median_rtt("adaptive")


class TestApPowerSaveFallback:
    def test_tx_failure_rebuffers_for_tim(self, sim):
        # A station that goes deaf mid-delivery: the AP falls back to
        # buffering instead of dropping.
        channel, ap, server, hosts = make_wifi_cell(sim)
        host = hosts[0]
        got = []
        host.stack.udp_bind(4444, got.append)
        sim.run(until=0.3)
        # Forcibly silence the receiver without telling the AP (and
        # without any beacon-listen windows: completely deaf).
        host.sta.power_state = PowerState.DOZE
        server.stack.send_udp(host.ip_addr, 4444, payload_size=16)
        sim.run(until=0.6)
        record = ap.station_record(host.sta.mac)
        assert record.asleep  # learned from the failed delivery
        assert len(record.buffer) == 1
        assert got == []
        # Once the station resumes its beacon schedule, TIM delivery
        # completes the handover.
        host.sta._schedule_beacon_listen()
        sim.run(until=1.2)
        assert got, "frame must arrive via TIM after the fallback"
