"""Tests for the energy meter and the paper's low-battery claim (§4.1)."""

import pytest

from repro.core.acutemon import AcuteMon, AcuteMonConfig
from repro.core.measurement import ProbeCollector
from repro.phone.energy import EnergyMeter, PowerProfile
from repro.testbed.topology import Testbed


def build(seed=61, **phone_kwargs):
    testbed = Testbed(seed=seed, emulated_rtt=0.03)
    phone = testbed.add_phone("nexus5", **phone_kwargs)
    meter = EnergyMeter(phone)
    return testbed, phone, meter


class TestAccounting:
    def test_idle_phone_mostly_dozes(self):
        testbed, phone, meter = build()
        testbed.run(10.0)
        meter.snapshot()
        assert meter.doze_time > 9.0
        assert meter.cam_time < 1.0
        # Bus also sleeps when idle.
        assert meter.bus_awake_time < 1.0

    def test_psm_disabled_stays_cam(self):
        testbed, phone, meter = build(psm_enabled=False)
        testbed.run(10.0)
        meter.snapshot()
        assert meter.cam_time > 9.5
        assert meter.doze_time == pytest.approx(0.0, abs=0.1)

    def test_time_accumulators_cover_elapsed(self):
        testbed, phone, meter = build()
        testbed.run(5.0)
        meter.snapshot()
        assert meter.cam_time + meter.doze_time == pytest.approx(
            meter.elapsed, abs=1e-6)

    def test_traffic_accumulates_airtime(self):
        testbed, phone, meter = build()
        testbed.settle(0.3)
        phone.stack.register_ping(1, lambda p: None)
        for index in range(20):
            testbed.sim.schedule(0.02 * index, phone.stack.send_echo_request,
                                 testbed.server_ip, 1, index)
        testbed.run(1.0)
        meter.snapshot()
        assert meter.tx_airtime > 0
        assert meter.rx_airtime > 0

    def test_energy_monotone_in_time(self):
        testbed, phone, meter = build()
        testbed.run(1.0)
        first = meter.energy_joules()
        testbed.run(1.0)
        assert meter.energy_joules() > first

    def test_doze_cheaper_than_cam(self):
        sleepy = build(seed=62)
        sleepy[0].run(10.0)
        awake = build(seed=62, psm_enabled=False, bus_sleep=False)
        awake[0].run(10.0)
        assert sleepy[2].energy_joules() < awake[2].energy_joules() / 5

    def test_custom_power_profile(self):
        testbed = Testbed(seed=63)
        phone = testbed.add_phone("nexus5")
        meter = EnergyMeter(phone, profile=PowerProfile(radio_doze=0.0,
                                                        bus_awake=0.0))
        testbed.run(5.0)
        # Doze is free in this profile: only the brief CAM window costs.
        assert meter.energy_joules() < 0.5

    def test_average_power_and_mah(self):
        testbed, phone, meter = build()
        testbed.run(10.0)
        assert meter.average_power_watts() == pytest.approx(
            meter.energy_joules() / meter.elapsed)
        assert meter.milliamp_hours() > 0

    def test_chains_existing_state_callback(self):
        testbed = Testbed(seed=64, emulated_rtt=0.03)
        phone = testbed.add_phone("nexus5")
        seen = []
        phone.sta.on_state_change = lambda old, new, r: seen.append(new)
        EnergyMeter(phone)
        testbed.settle(0.3)
        phone.stack.send_echo_request(testbed.server_ip, 1, 1)
        testbed.run(2.0)
        assert "DOZE" in seen  # original observer still fires


class TestAcuteMonBatteryClaim:
    def _session_energy(self, mitigation, window=20.0, seed=65):
        """Energy over a fixed window containing one measurement."""
        testbed = Testbed(seed=seed, emulated_rtt=0.03)
        phone = testbed.add_phone(
            "nexus5",
            psm_enabled=(mitigation != "always_awake"),
            bus_sleep=(mitigation != "always_awake"),
        )
        meter = EnergyMeter(phone)
        collector = ProbeCollector(phone)
        testbed.settle(0.5)
        if mitigation in ("acutemon", "always_awake"):
            config = AcuteMonConfig(
                probe_count=50,
                background_enabled=(mitigation == "acutemon"),
                warmup_enabled=(mitigation == "acutemon"),
            )
            monitor = AcuteMon(phone, collector, testbed.server_ip,
                               config=config)
            done = []
            monitor.start(on_complete=lambda r: done.append(r))
            while not done:
                testbed.sim.step()
        remaining = window - testbed.sim.now
        if remaining > 0:
            testbed.run(remaining)
        return meter.energy_joules()

    def test_acutemon_cheaper_than_always_awake(self):
        acutemon = self._session_energy("acutemon")
        always = self._session_energy("always_awake")
        # Keeping the phone permanently awake (the naive mitigation)
        # costs several times more over the window.
        assert acutemon < always / 3

    def test_acutemon_overhead_over_idle_is_modest(self):
        idle = self._session_energy("none")
        acutemon = self._session_energy("acutemon")
        # The measurement itself costs something, but far less than the
        # window's always-awake budget.
        assert idle < acutemon < idle * 4
