"""Concurrent multi-phone measurements on one WLAN."""

import statistics

import pytest

from repro.core.acutemon import AcuteMon, AcuteMonConfig
from repro.core.measurement import ProbeCollector
from repro.net.addresses import ip
from repro.testbed.topology import Testbed
from repro.tools.ping import PingTool


def build(seed=95, rtt=0.060):
    testbed = Testbed(seed=seed, emulated_rtt=rtt)
    n5 = testbed.add_phone("nexus5")
    n4 = testbed.add_phone("nexus4", phone_ip=ip("192.168.1.20"))
    collectors = {p: ProbeCollector(p) for p in (n5, n4)}
    testbed.settle(0.5)
    return testbed, n5, n4, collectors


class TestConcurrentMeasurement:
    def test_two_phones_disagree_with_stock_ping(self):
        # The §1 motivation: same path, chipset-dependent answers.
        testbed, n5, n4, collectors = build()
        finished = []
        tools = {}
        for phone in (n5, n4):
            tool = PingTool(phone, collectors[phone], testbed.server_ip,
                            interval=1.0)
            tools[phone] = tool
            tool.start(20, on_complete=lambda r, p=phone: finished.append(p))
        while len(finished) < 2:
            assert testbed.sim.step()
        du_n5 = statistics.median(tools[n5].rtts())
        du_n4 = statistics.median(tools[n4].rtts())
        # Both inflated, by different amounts, through different paths.
        assert abs(du_n5 - du_n4) > 0.01
        dn_n4 = statistics.median(collectors[n4].layered_rtts()["dn"])
        dn_n5 = statistics.median(collectors[n5].layered_rtts()["dn"])
        assert dn_n4 > dn_n5 + 0.02  # N4's inflation is in the network

    def test_two_phones_agree_under_acutemon(self):
        testbed, n5, n4, collectors = build(seed=96)
        finished = []
        monitors = {}
        for phone in (n5, n4):
            monitor = AcuteMon(phone, collectors[phone], testbed.server_ip,
                               config=AcuteMonConfig(probe_count=20))
            monitors[phone] = monitor
            monitor.start(on_complete=lambda r, p=phone: finished.append(p))
        while len(finished) < 2:
            assert testbed.sim.step()
        du_n5 = statistics.median(monitors[n5].rtts())
        du_n4 = statistics.median(monitors[n4].rtts())
        assert abs(du_n5 - du_n4) < 0.004
        for phone in (n5, n4):
            dn = statistics.median(collectors[phone].layered_rtts()["dn"])
            assert abs(dn - 0.060) < 0.003

    def test_collectors_do_not_cross_contaminate(self):
        # Each phone's kernel tap only sees its own probes.
        testbed, n5, n4, collectors = build(seed=97)
        tool5 = PingTool(n5, collectors[n5], testbed.server_ip,
                         interval=0.05)
        tool4 = PingTool(n4, collectors[n4], testbed.server_ip,
                         interval=0.05)
        done = []
        tool5.start(10, on_complete=lambda r: done.append(5))
        tool4.start(10, on_complete=lambda r: done.append(4))
        while len(done) < 2:
            assert testbed.sim.step()
        for phone in (n5, n4):
            records = collectors[phone].completed()
            assert len(records) == 10
            for record in records:
                assert record.request.src == phone.ip_addr

    def test_one_phones_bg_traffic_does_not_break_the_other(self):
        # AcuteMon on phone A while phone B pings normally.
        testbed, n5, n4, collectors = build(seed=98, rtt=0.030)
        done = []
        monitor = AcuteMon(n5, collectors[n5], testbed.server_ip,
                           config=AcuteMonConfig(probe_count=30))
        monitor.start(on_complete=lambda r: done.append("acute"))
        tool = PingTool(n4, collectors[n4], testbed.server_ip,
                        interval=0.02)
        tool.start(30, on_complete=lambda r: done.append("ping"))
        while len(done) < 2:
            assert testbed.sim.step()
        assert monitor.loss_count() == 0
        assert tool.loss_count() == 0
        # Phone B's fast pings stay accurate despite A's background load.
        assert statistics.median(tool.rtts()) < 0.040
