"""Unit and integration tests for the IP stack and TCP implementation."""

import pytest

from repro.net.addresses import ip
from repro.net.netem import NetemQdisc
from repro.net.packet import TCP_RST, TCP_SYN
from repro.net.servers import HttpServer, MeasurementServer, UdpEchoServer
from tests.conftest import run_until


class TestIcmp:
    def test_echo_round_trip(self, lan):
        sim, a, b = lan
        replies = []
        a.stack.register_ping(7, replies.append)
        a.stack.send_echo_request(b.ip_addr, 7, 1, meta={"probe_id": 1})
        sim.run(until=1.0)
        assert len(replies) == 1
        assert replies[0].probe_id == 1
        assert replies[0].src == b.ip_addr

    def test_echo_responder_can_be_disabled(self, lan):
        sim, a, b = lan
        b.stack.echo_responder_enabled = False
        replies = []
        a.stack.register_ping(7, replies.append)
        a.stack.send_echo_request(b.ip_addr, 7, 1)
        sim.run(until=1.0)
        assert replies == []

    def test_reply_demuxed_by_ident(self, lan):
        sim, a, b = lan
        mine, other = [], []
        a.stack.register_ping(7, mine.append)
        a.stack.register_ping(8, other.append)
        a.stack.send_echo_request(b.ip_addr, 7, 1)
        sim.run(until=1.0)
        assert len(mine) == 1 and other == []

    def test_duplicate_ident_rejected(self, lan):
        _sim, a, _b = lan
        a.stack.register_ping(7, lambda p: None)
        with pytest.raises(ValueError):
            a.stack.register_ping(7, lambda p: None)

    def test_ping_handle_close_unregisters(self, lan):
        sim, a, b = lan
        replies = []
        handle = a.stack.register_ping(7, replies.append)
        handle.close()
        a.stack.send_echo_request(b.ip_addr, 7, 1)
        sim.run(until=1.0)
        assert replies == []


class TestUdp:
    def test_udp_delivery_and_echo(self, lan):
        sim, a, b = lan
        UdpEchoServer(b, port=9999)
        got = []
        a.stack.udp_bind(5555, got.append)
        a.stack.send_udp(b.ip_addr, 9999, src_port=5555, payload_size=64,
                         meta={"probe_id": 3})
        sim.run(until=1.0)
        assert len(got) == 1
        assert got[0].payload.payload_size == 64
        assert got[0].probe_id == 3

    def test_unbound_port_drops(self, lan):
        sim, a, b = lan
        before = b.stack.packets_dropped
        a.stack.send_udp(b.ip_addr, 4242, payload_size=10)
        sim.run(until=1.0)
        assert b.stack.packets_dropped == before + 1

    def test_echo_delay_meta_honoured(self, lan):
        sim, a, b = lan
        UdpEchoServer(b, port=9999)
        arrivals = []
        a.stack.udp_bind(5555, lambda p: arrivals.append(sim.now))
        a.stack.send_udp(b.ip_addr, 9999, src_port=5555, payload_size=32,
                         meta={"probe_id": 1, "echo_delay": 0.25})
        sim.run(until=1.0)
        assert arrivals and arrivals[0] >= 0.25

    def test_ephemeral_ports_unique(self, lan):
        _sim, a, _b = lan
        ports = {a.stack.allocate_port() for _ in range(100)}
        assert len(ports) == 100


class TestTcpHandshake:
    def test_three_way_handshake(self, lan):
        sim, a, b = lan
        server_conns = []
        b.stack.tcp.listen(80, server_conns.append)
        connected = []
        conn = a.stack.tcp.connect(b.ip_addr, 80)
        conn.on_connected = lambda c: connected.append(sim.now)
        sim.run(until=1.0)
        assert connected
        assert conn.state == "ESTABLISHED"
        assert server_conns[0].state == "ESTABLISHED"

    def test_syn_to_closed_port_resets(self, lan):
        sim, a, b = lan
        resets = []
        conn = a.stack.tcp.connect(b.ip_addr, 81)
        conn.on_reset = lambda c: resets.append(sim.now)
        sim.run(until=1.0)
        assert resets
        assert conn.state == "CLOSED"

    def test_meta_propagates_to_syn_ack(self, lan):
        sim, a, b = lan
        b.stack.tcp.listen(80, lambda c: None)
        seen = []
        original_deliver = a.stack.tcp.deliver

        def spy(packet):
            seen.append(packet)
            original_deliver(packet)

        a.stack.tcp.deliver = spy
        a.stack.tcp.connect(b.ip_addr, 80, meta={"probe_id": 42})
        sim.run(until=1.0)
        syn_acks = [p for p in seen if p.payload.has(TCP_SYN)]
        assert syn_acks and syn_acks[0].probe_id == 42


class TestTcpData:
    def _established(self, lan):
        sim, a, b = lan
        server_side = {}

        def on_conn(conn):
            server_side["conn"] = conn

        b.stack.tcp.listen(80, on_conn)
        client = a.stack.tcp.connect(b.ip_addr, 80)
        sim.run(until=0.5)
        return sim, a, b, client, server_side["conn"]

    def test_data_transfer_counts_bytes(self, lan):
        sim, _a, _b, client, server = self._established(lan)
        received = []
        server.on_data = lambda c, n, m: received.append(n)
        client.send(500)
        sim.run(until=1.0)
        assert sum(received) == 500
        assert server.bytes_received == 500

    def test_large_send_segmented_at_mss(self, lan):
        sim, _a, _b, client, server = self._established(lan)
        chunks = []
        server.on_data = lambda c, n, m: chunks.append(n)
        client.send(4000)
        sim.run(until=1.0)
        assert sum(chunks) == 4000
        assert max(chunks) <= 1460
        assert len(chunks) == 3

    def test_bidirectional_transfer(self, lan):
        sim, _a, _b, client, server = self._established(lan)
        got_back = []
        server.on_data = lambda c, n, m: c.send(2 * n)
        client.on_data = lambda c, n, m: got_back.append(n)
        client.send(100)
        sim.run(until=1.0)
        assert sum(got_back) == 200

    def test_send_meta_reaches_peer(self, lan):
        sim, _a, _b, client, server = self._established(lan)
        metas = []
        server.on_data = lambda c, n, m: metas.append(m)
        client.send(100, meta={"probe_id": 17})
        sim.run(until=1.0)
        assert metas[0].get("probe_id") == 17

    def test_send_on_closed_connection_raises(self, lan):
        sim, _a, _b, client, _server = self._established(lan)
        client.abort()
        from repro.net.tcp import TcpError

        with pytest.raises(TcpError):
            client.send(10)


class TestTcpTeardown:
    def test_orderly_close_both_sides(self, lan):
        sim, a, b = lan
        server_conns = []
        b.stack.tcp.listen(80, server_conns.append)
        client = a.stack.tcp.connect(b.ip_addr, 80)
        closed = []
        sim.run(until=0.5)
        server = server_conns[0]
        server.on_close = lambda c: closed.append("server")
        client.on_close = lambda c: closed.append("client")
        client.close()
        sim.run(until=1.0)
        # Server enters CLOSE_WAIT; it closes too.
        server.close()
        sim.run(until=2.0)
        assert client.state == "CLOSED"
        assert server.state == "CLOSED"
        assert a.stack.tcp.active_connections == 0
        assert b.stack.tcp.active_connections == 0

    def test_abort_sends_rst(self, lan):
        sim, a, b = lan
        server_conns = []
        b.stack.tcp.listen(80, server_conns.append)
        client = a.stack.tcp.connect(b.ip_addr, 80)
        sim.run(until=0.5)
        resets = []
        server_conns[0].on_reset = lambda c: resets.append(1)
        client.abort()
        sim.run(until=1.0)
        assert resets == [1]


class TestTcpRetransmission:
    def test_syn_retransmitted_under_loss(self, lan):
        sim, a, b = lan
        # Lossy client egress: the first SYN may vanish; RTO recovers it.
        a.netem = NetemQdisc(sim, loss=0.5, rng=sim.rng.stream("loss"),
                             name="lossy")
        b.stack.tcp.listen(80, lambda c: None)
        connected = []
        conn = a.stack.tcp.connect(b.ip_addr, 80)
        conn.on_connected = lambda c: connected.append(sim.now)
        sim.run(until=30.0)
        assert connected, "handshake must eventually complete via RTO"

    def test_data_retransmitted_under_loss(self, lan):
        sim, a, b = lan
        server_conns = []
        b.stack.tcp.listen(80, server_conns.append)
        client = a.stack.tcp.connect(b.ip_addr, 80)
        sim.run(until=0.5)
        a.netem = NetemQdisc(sim, loss=0.4, rng=sim.rng.stream("loss2"),
                             name="lossy2")
        total = []
        server_conns[0].on_data = lambda c, n, m: total.append(n)
        for _ in range(5):
            client.send(100)
        sim.run(until=60.0)
        assert sum(total) == 500
        assert client.retransmissions > 0


class TestServers:
    def test_http_request_response(self, lan):
        sim, a, b = lan
        MeasurementServer(b)
        responses = []
        conn = a.stack.tcp.connect(b.ip_addr, 80)
        conn.on_connected = lambda c: c.send(120, meta={"probe_id": 9})
        conn.on_data = lambda c, n, m: responses.append((n, m.get("probe_id")))
        sim.run(until=1.0)
        assert responses == [(230, 9)]

    def test_http_server_counts_requests(self, lan):
        sim, a, b = lan
        server = HttpServer(b, port=8080, response_size=100)
        conn = a.stack.tcp.connect(b.ip_addr, 8080)
        conn.on_connected = lambda c: c.send(50)
        sim.run(until=1.0)
        assert server.requests_served == 1

    def test_http_close_after_response(self, lan):
        sim, a, b = lan
        HttpServer(b, port=8080, close_after_response=True)
        closed = []
        conn = a.stack.tcp.connect(b.ip_addr, 8080)
        conn.on_connected = lambda c: c.send(50)
        conn.on_close = lambda c: closed.append(1)
        sim.run(until=2.0)
        # Peer FIN arrives; closing our side completes the teardown.
        conn.close()
        sim.run(until=3.0)
        assert conn.state == "CLOSED"
