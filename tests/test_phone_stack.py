"""Tests for the assembled phone: layer pipeline, stamps, runtimes."""

import pytest

from repro.phone.profiles import (
    GALAXY_GRAND, HTC_ONE, NEXUS_4, NEXUS_5, PHONES, XPERIA_J, phone_profile,
)
from repro.testbed.topology import Testbed


@pytest.fixture
def bed():
    testbed = Testbed(seed=11, emulated_rtt=0.02)
    phone = testbed.add_phone("nexus5")
    testbed.settle(0.5)
    return testbed, phone


class TestProfiles:
    def test_all_five_phones_registered(self):
        assert set(PHONES) == {"nexus5", "nexus4", "htc_one", "xperia_j",
                               "galaxy_grand"}

    def test_lookup_by_key(self):
        assert phone_profile("nexus5") is NEXUS_5
        with pytest.raises(KeyError):
            phone_profile("iphone")

    def test_table4_psm_timeouts(self):
        # Tip values from Table 4 of the paper.
        assert NEXUS_4.psm_timeout == pytest.approx(40e-3)
        assert NEXUS_5.psm_timeout == pytest.approx(205e-3)
        assert GALAXY_GRAND.psm_timeout == pytest.approx(45e-3)
        assert HTC_ONE.psm_timeout == pytest.approx(400e-3)
        assert XPERIA_J.psm_timeout == pytest.approx(210e-3)

    def test_actual_listen_interval_zero(self):
        assert all(p.listen_interval_actual == 0 for p in PHONES.values())

    def test_associated_listen_intervals_by_driver(self):
        # 1 for wcnss, 10 for bcmdhd (§3.2.2).
        assert NEXUS_4.listen_interval_assoc == 1
        assert HTC_ONE.listen_interval_assoc == 1
        assert NEXUS_5.listen_interval_assoc == 10
        assert XPERIA_J.listen_interval_assoc == 10

    def test_runtime_costs_ordered(self):
        profile = NEXUS_5
        assert (profile.runtime_cost("dalvik").mean
                > profile.runtime_cost("native").mean)
        with pytest.raises(ValueError):
            profile.runtime_cost("wasm")

    def test_slow_phone_costs_scaled_up(self):
        assert (XPERIA_J.runtime_cost("native").mean
                > NEXUS_5.runtime_cost("native").mean)

    def test_nexus4_ping_quirk_flag(self):
        assert NEXUS_4.ping_integer_above_100ms
        assert not NEXUS_5.ping_integer_above_100ms


class TestPhonePipeline:
    def test_ping_round_trip_with_all_stamps(self, bed):
        testbed, phone = bed
        sim = testbed.sim
        replies = []
        phone.stack.register_ping(3, replies.append)
        request = phone.stack.send_echo_request(
            testbed.server_ip, 3, 1, meta={"probe_id": 1})
        sim.run(until=sim.now + 1.0)
        assert len(replies) == 1
        response = replies[0]
        for stamp in ("kernel", "driver", "driver_done", "phy"):
            assert stamp in request.stamps, f"request missing {stamp}"
            assert stamp in response.stamps, f"response missing {stamp}"
        # Stamp ordering down the stack (request) and up (response).
        assert (request.stamps["kernel"] <= request.stamps["driver"]
                <= request.stamps["driver_done"] <= request.stamps["phy"])
        assert (response.stamps["phy"] <= response.stamps["driver"]
                <= response.stamps["driver_done"] <= response.stamps["kernel"])

    def test_user_send_returns_pre_delay_timestamp(self, bed):
        testbed, phone = bed
        sim = testbed.sim
        fired = []
        t0 = phone.user_send(lambda: fired.append(sim.now))
        assert t0 == sim.now
        sim.run(until=sim.now + 0.1)
        assert fired and fired[0] > t0

    def test_user_wrap_adds_delay_and_stamps(self, bed):
        testbed, phone = bed
        sim = testbed.sim
        got = []
        phone.stack.register_ping(5, phone.user_wrap(got.append))
        phone.stack.send_echo_request(testbed.server_ip, 5, 1,
                                      meta={"probe_id": 2})
        sim.run(until=sim.now + 1.0)
        assert len(got) == 1
        assert "user" in got[0].stamps
        assert got[0].stamps["user"] > got[0].stamps["kernel"]

    def test_dalvik_runtime_slower_than_native(self, bed):
        testbed, phone = bed
        rng_draws = 500
        phone.runtime = "native"
        native = sum(phone.app_cost() for _ in range(rng_draws))
        phone.runtime = "dalvik"
        dalvik = sum(phone.app_cost() for _ in range(rng_draws))
        assert dalvik > native * 3

    def test_kernel_tap_sees_both_directions(self, bed):
        testbed, phone = bed
        sim = testbed.sim
        directions = []
        phone.kernel.add_tap(lambda p, d: directions.append(d))
        phone.stack.register_ping(6, lambda p: None)
        phone.stack.send_echo_request(testbed.server_ip, 6, 1)
        sim.run(until=sim.now + 1.0)
        assert "tx" in directions and "rx" in directions

    def test_set_bus_sleep_toggle(self, bed):
        testbed, phone = bed
        phone.set_bus_sleep(False)
        testbed.run(1.0)
        assert phone.driver.bus.state == "AWAKE"
        phone.set_bus_sleep(True)
        testbed.run(1.0)
        assert phone.driver.bus.state == "ASLEEP"

    def test_set_psm_enabled_toggle(self, bed):
        testbed, phone = bed
        testbed.run(1.0)
        assert phone.sta.power_state == "DOZE"
        phone.set_psm_enabled(False)
        assert phone.sta.power_state == "AWAKE"
        testbed.run(1.0)
        assert phone.sta.power_state == "AWAKE"

    def test_phone_ignores_foreign_packets(self, bed):
        testbed, phone = bed
        before = phone.stack.packets_received
        # A packet routed to another WLAN address never reaches the stack.
        testbed.server_host.stack.send_udp(
            phone.ip_addr, 9, payload_size=4)  # unbound port: received+dropped
        testbed.run(0.5)
        assert phone.stack.packets_received == before + 1
