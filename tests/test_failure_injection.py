"""Failure injection: tools must degrade gracefully, never hang or lie.

Servers die mid-measurement, paths black out, sniffers stop capturing —
the measurement layer has to surface losses and keep going.
"""

import pytest

from repro.core.acutemon import AcuteMon, AcuteMonConfig
from repro.core.measurement import ProbeCollector
from repro.testbed.topology import Testbed
from repro.tools.httping import HttpingTool
from repro.tools.ping import PingTool


def build(seed=201, rtt=0.03):
    testbed = Testbed(seed=seed, emulated_rtt=rtt)
    phone = testbed.add_phone("nexus5")
    collector = ProbeCollector(phone)
    testbed.settle(0.5)
    return testbed, phone, collector


class TestServerOutage:
    def test_ping_counts_losses_during_outage(self):
        testbed, phone, collector = build()
        # The echo responder dies after 0.25 s and recovers at 0.8 s.
        testbed.sim.schedule(0.25, lambda: setattr(
            testbed.server_host.stack, "echo_responder_enabled", False))
        testbed.sim.schedule(0.80, lambda: setattr(
            testbed.server_host.stack, "echo_responder_enabled", True))
        tool = PingTool(phone, collector, testbed.server_ip, interval=0.1,
                        timeout=0.5)
        samples = tool.run_sync(12)
        assert len(samples) == 12
        assert 3 <= tool.loss_count() <= 8
        assert len(tool.rtts()) == 12 - tool.loss_count()

    def test_acutemon_survives_outage_window(self):
        testbed, phone, collector = build(seed=202)
        testbed.sim.schedule(0.3, lambda: setattr(
            testbed.server_host.stack, "echo_responder_enabled", False))
        config = AcuteMonConfig(probe_count=10, probe_method="icmp",
                                probe_timeout=0.2, probe_gap=0.05)
        monitor = AcuteMon(phone, collector, testbed.server_ip,
                           config=config)
        done = []
        monitor.start(on_complete=lambda r: done.append(r))
        while not done:
            assert testbed.sim.step(), "AcuteMon hung on a dead server"
        assert len(monitor.results) == 10
        assert monitor.loss_count() >= 5

    def test_http_server_reset_mid_run(self):
        testbed, phone, collector = build(seed=203)
        tool = HttpingTool(phone, collector, testbed.server_ip,
                           interval=0.05, timeout=0.3)
        done = []
        tool.start(10, on_complete=lambda r: done.append(r))
        # Kill the connection from the server side after a few probes.
        def reset():
            for conn in list(
                    testbed.server_host.stack.tcp._connections.values()):
                conn.abort()

        testbed.sim.schedule(0.2, reset)
        deadline = testbed.sim.now + 30.0
        while not done and testbed.sim.now < deadline:
            if not testbed.sim.step():
                break
        # The tool must have terminated (reporting what it had), not hang.
        assert done, "httping hung after a server-side RST"


class TestPathBlackout:
    def test_blackout_window_loses_exactly_those_probes(self):
        testbed, phone, collector = build(seed=204)
        # 100% loss between 0.3 s and 0.7 s.
        testbed.sim.schedule(0.30, lambda: setattr(testbed.netem, "loss", 1.0))
        testbed.sim.schedule(0.70, lambda: setattr(testbed.netem, "loss", 0.0))
        tool = PingTool(phone, collector, testbed.server_ip, interval=0.1,
                        timeout=0.4)
        tool.run_sync(10)
        assert 3 <= tool.loss_count() <= 6
        # Probes outside the window are unaffected.
        assert all(0.028 < rtt < 0.050 for rtt in tool.rtts())

    def test_acutemon_reports_partial_results(self):
        testbed, phone, collector = build(seed=205)
        testbed.sim.schedule(0.3, lambda: setattr(testbed.netem, "loss", 1.0))
        config = AcuteMonConfig(probe_count=20, probe_method="udp",
                                probe_timeout=0.2)
        monitor = AcuteMon(phone, collector, testbed.server_ip,
                           config=config)
        done = []
        monitor.start(on_complete=lambda r: done.append(r))
        while not done:
            assert testbed.sim.step()
        assert len(monitor.results) == 20
        assert 0 < len(monitor.rtts()) < 20


class TestSnifferFailure:
    def test_dead_sniffer_recovered_by_merge(self):
        testbed, phone, collector = build(seed=206)
        # Sniffer A stops capturing early (monitor keeps running but the
        # record list is frozen — a crashed capture process).
        victim = testbed.sniffers[0]

        def crash():
            victim.capture_loss = 1.0
            victim.rng = testbed.sim.rng.stream("crashed")

        testbed.sim.schedule(0.2, crash)
        tool = PingTool(phone, collector, testbed.server_ip, interval=0.05)
        tool.run_sync(10)
        from repro.sniffer.rtt import completed_rtts, network_rtts

        merged = testbed.merged_capture()
        rtts = completed_rtts(network_rtts(merged, phone.sta.mac))
        assert len(rtts) == 10  # B and C covered the gap

    def test_all_layers_except_phy_still_present_without_sniffers(self):
        # Even with zero usable captures, du/dk/dv come from the phone.
        testbed, phone, collector = build(seed=207)
        for sniffer in testbed.sniffers:
            sniffer.capture_loss = 1.0
            sniffer.rng = testbed.sim.rng.stream(f"dead:{sniffer.name}")
        tool = PingTool(phone, collector, testbed.server_ip, interval=0.05)
        tool.run_sync(5)
        layers = collector.layered_rtts()
        assert len(layers["du"]) == 5
        assert len(layers["dk"]) == 5
        # (dn still exists via packet stamps — the in-simulation ground
        # truth is independent of the modelled sniffer hardware.)
