"""Unit tests for one-shot and periodic timers."""

import pytest

from repro.sim.timers import PeriodicTimer, Timer


class TestTimer:
    def test_fires_after_interval(self, sim):
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start(0.25)
        sim.run()
        assert fired == [0.25]

    def test_restart_moves_deadline(self, sim):
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start(0.2)
        sim.schedule(0.1, timer.restart, 0.2)
        sim.run()
        assert fired == [pytest.approx(0.3)]

    def test_cancel_prevents_firing(self, sim):
        fired = []
        timer = Timer(sim, lambda: fired.append(1))
        timer.start(0.2)
        timer.cancel()
        sim.run()
        assert fired == []

    def test_armed_reflects_state(self, sim):
        timer = Timer(sim, lambda: None)
        assert not timer.armed
        timer.start(0.5)
        assert timer.armed
        assert timer.deadline == 0.5
        timer.cancel()
        assert not timer.armed
        assert timer.deadline is None

    def test_fires_once_per_start(self, sim):
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start(0.1)
        sim.run(until=1.0)
        assert len(fired) == 1

    def test_restart_from_callback(self, sim):
        fired = []

        def on_fire():
            fired.append(sim.now)
            if len(fired) < 3:
                timer.start(0.1)

        timer = Timer(sim, on_fire)
        timer.start(0.1)
        sim.run()
        assert fired == [pytest.approx(0.1), pytest.approx(0.2),
                         pytest.approx(0.3)]


class TestPeriodicTimer:
    def test_ticks_at_fixed_period(self, sim):
        ticks = []
        timer = PeriodicTimer(sim, 0.5, lambda: ticks.append(sim.now))
        timer.start()
        sim.run(until=2.4)
        assert ticks == [pytest.approx(t) for t in (0.5, 1.0, 1.5, 2.0)]

    def test_no_drift_from_epoch(self, sim):
        # 1000 ticks of 10 ms must land exactly on multiples of 0.01.
        ticks = []
        timer = PeriodicTimer(sim, 0.01, lambda: ticks.append(sim.now))
        timer.start()
        sim.run(until=10.0)
        assert len(ticks) == 1000
        assert ticks[-1] == pytest.approx(10.0, abs=1e-9)

    def test_stop_from_callback_sticks(self, sim):
        ticks = []

        def on_tick():
            ticks.append(sim.now)
            if len(ticks) == 2:
                timer.stop()

        timer = PeriodicTimer(sim, 0.1, on_tick)
        timer.start()
        sim.run(until=5.0)
        assert len(ticks) == 2

    def test_phase_delays_first_tick(self, sim):
        ticks = []
        timer = PeriodicTimer(sim, 1.0, lambda: ticks.append(sim.now))
        timer.start(phase=0.25)
        sim.run(until=2.5)
        assert ticks == [pytest.approx(1.25), pytest.approx(2.25)]

    def test_invalid_period_rejected(self, sim):
        with pytest.raises(ValueError):
            PeriodicTimer(sim, 0.0, lambda: None)

    def test_tick_counter(self, sim):
        timer = PeriodicTimer(sim, 0.2, lambda: None)
        timer.start()
        sim.run(until=1.1)
        assert timer.ticks == 5

    def test_restart_resets_epoch(self, sim):
        ticks = []
        timer = PeriodicTimer(sim, 1.0, lambda: ticks.append(sim.now))
        timer.start()
        sim.schedule(0.5, timer.start)  # restart half way through
        sim.run(until=2.0)
        assert ticks == [pytest.approx(1.5)]
