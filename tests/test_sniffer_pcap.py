"""Tests for pcap I/O, sniffers, multi-sniffer merge, and RTT extraction."""

import io

import pytest

from repro.net.addresses import ip
from repro.sniffer.merge import coverage, merge_records
from repro.sniffer.pcap import (
    LINKTYPE_IEEE802_11,
    LINKTYPE_RAW,
    PcapReader,
    PcapWriter,
)
from repro.sniffer.rtt import completed_rtts, network_rtts, network_rtts_from_pcap
from repro.sniffer.sniffer import WirelessSniffer
from repro.testbed.topology import Testbed


class TestPcapFormat:
    def test_round_trip_in_memory(self):
        buffer = io.BytesIO()
        writer = PcapWriter(buffer, linktype=LINKTYPE_RAW)
        writer.write(1.5, b"hello")
        writer.write(2.25, b"world!")
        buffer.seek(0)
        reader = PcapReader(buffer)
        assert reader.linktype == LINKTYPE_RAW
        records = list(reader)
        assert len(records) == 2
        assert records[0][0] == pytest.approx(1.5, abs=1e-6)
        assert records[0][1] == b"hello"
        assert records[1][1] == b"world!"

    def test_round_trip_on_disk(self, tmp_path):
        path = tmp_path / "capture.pcap"
        with PcapWriter(path) as writer:
            writer.write(0.001, b"\x01\x02\x03")
        with PcapReader(path) as reader:
            assert reader.linktype == LINKTYPE_IEEE802_11
            (timestamp, data), = list(reader)
            assert data == b"\x01\x02\x03"

    def test_microsecond_resolution(self):
        buffer = io.BytesIO()
        writer = PcapWriter(buffer)
        writer.write(123.456789, b"x")
        buffer.seek(0)
        (timestamp, _), = list(PcapReader(buffer))
        assert timestamp == pytest.approx(123.456789, abs=1e-6)

    def test_snaplen_truncates(self):
        buffer = io.BytesIO()
        writer = PcapWriter(buffer, snaplen=4)
        writer.write(0.0, b"abcdefgh")
        buffer.seek(0)
        (_, data), = list(PcapReader(buffer))
        assert data == b"abcd"

    def test_bad_magic_rejected(self):
        with pytest.raises(ValueError):
            PcapReader(io.BytesIO(b"\x00" * 24))

    def test_truncated_header_rejected(self):
        with pytest.raises(ValueError):
            PcapReader(io.BytesIO(b"\xd4\xc3"))


class SnifferBed:
    """A tiny testbed with one phone pinging the server."""

    def __init__(self, seed=0, sniffer_loss=0.0, count=5, pcap_path=None):
        self.testbed = Testbed(seed=seed, emulated_rtt=0.02,
                               sniffer_loss=sniffer_loss)
        if pcap_path is not None:
            self.extra_sniffer = WirelessSniffer(
                self.testbed.sim, self.testbed.channel, name="pcap-sniffer",
                pcap_path=pcap_path)
        self.phone = self.testbed.add_phone("nexus5")
        self.testbed.settle(0.3)
        self.phone.stack.register_ping(8, lambda p: None)
        for index in range(count):
            self.testbed.sim.schedule(
                0.05 * index, self.phone.stack.send_echo_request,
                self.testbed.server_ip, 8, index,
                meta={"probe_id": index + 1})
        self.testbed.run(0.05 * count + 0.5)


class TestWirelessSniffer:
    def test_captures_beacons_nulls_and_data(self):
        bed = SnifferBed()
        sniffer = bed.testbed.sniffers[0]
        assert sniffer.beacon_records()
        assert sniffer.data_records()
        assert len(sniffer.records_for_probe(1)) >= 2  # request + response

    def test_capture_loss_misses_frames(self):
        lossless = SnifferBed(seed=3, sniffer_loss=0.0)
        lossy = SnifferBed(seed=3, sniffer_loss=0.3)
        assert (len(lossy.testbed.sniffers[0].records)
                < len(lossless.testbed.sniffers[0].records))
        assert lossy.testbed.sniffers[0].frames_missed > 0

    def test_pcap_output_parses(self, tmp_path):
        path = tmp_path / "air.pcap"
        bed = SnifferBed(pcap_path=str(path))
        bed.extra_sniffer.close()
        with PcapReader(path) as reader:
            assert reader.linktype == LINKTYPE_IEEE802_11
            frames = list(reader)
        assert len(frames) == len(bed.extra_sniffer.records)


class TestMerge:
    def test_merge_recovers_lost_frames(self):
        bed = SnifferBed(seed=5, sniffer_loss=0.2)
        merged = merge_records(*bed.testbed.sniffers)
        for sniffer in bed.testbed.sniffers:
            assert len(merged) >= len(sniffer.records)
        # Merged capture must be strictly better than the worst sniffer.
        worst = min(len(s.records) for s in bed.testbed.sniffers)
        assert len(merged) > worst

    def test_merge_deduplicates(self):
        bed = SnifferBed(seed=5, sniffer_loss=0.0)
        merged = merge_records(*bed.testbed.sniffers)
        # Three lossless sniffers see identical traffic: merged == one of them.
        assert len(merged) == len(bed.testbed.sniffers[0].records)

    def test_merge_time_ordered(self):
        bed = SnifferBed(seed=5, sniffer_loss=0.1)
        merged = merge_records(*bed.testbed.sniffers)
        times = [record.time for record in merged]
        assert times == sorted(times)

    def test_coverage_reports_fractions(self):
        bed = SnifferBed(seed=5, sniffer_loss=0.2)
        merged = merge_records(*bed.testbed.sniffers)
        fractions = coverage(merged, *bed.testbed.sniffers)
        assert set(fractions) == {"sniffer-A", "sniffer-B", "sniffer-C"}
        assert all(0.5 < f <= 1.0 for f in fractions.values())


class TestRttExtraction:
    def test_network_rtts_from_records(self):
        bed = SnifferBed(seed=7, count=5)
        merged = bed.testbed.merged_capture()
        transactions = network_rtts(merged, bed.phone.sta.mac)
        rtts = completed_rtts(transactions)
        assert len(rtts) == 5
        for rtt in rtts.values():
            assert 0.019 < rtt < 0.030  # ~emulated 20 ms

    def test_rtts_match_packet_stamps(self):
        bed = SnifferBed(seed=7, count=3)
        merged = bed.testbed.merged_capture()
        transactions = network_rtts(merged, bed.phone.sta.mac)
        for txn in transactions.values():
            assert txn.complete
            assert txn.rtt == pytest.approx(txn.tin - txn.ton)

    def test_network_rtts_from_pcap_file(self, tmp_path):
        path = tmp_path / "air.pcap"
        bed = SnifferBed(seed=9, count=4, pcap_path=str(path))
        bed.extra_sniffer.close()
        from_pcap = completed_rtts(
            network_rtts_from_pcap(path, bed.phone.sta.mac))
        in_memory = completed_rtts(
            network_rtts(bed.extra_sniffer.records, bed.phone.sta.mac))
        assert set(from_pcap) == set(in_memory)
        for probe_id, rtt in from_pcap.items():
            # pcap stores microsecond timestamps: allow 1 us rounding.
            assert rtt == pytest.approx(in_memory[probe_id], abs=2e-6)

    def test_pcap_linktype_validated(self, tmp_path):
        path = tmp_path / "raw.pcap"
        with PcapWriter(path, linktype=LINKTYPE_RAW) as writer:
            writer.write(0.0, b"xx")
        bed = SnifferBed(seed=1, count=1)
        with pytest.raises(ValueError):
            network_rtts_from_pcap(path, bed.phone.sta.mac)
