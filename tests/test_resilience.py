"""Unit tests for :mod:`repro.testbed.resilience`.

The chaos suite (``tests/test_campaign_chaos.py``) exercises the layer
end to end; these tests pin the individual contracts — policy
validation and backoff schedules, the journal's record format and torn
tail tolerance, failure round-trips, and the retry/timeout loop —
against cheap stub cells.
"""

import json

import pytest

from repro.testbed import campaign as campaign_module
from repro.testbed.campaign import Campaign, CellResult
from repro.testbed.resilience import (
    JOURNAL_VERSION, CellFailure, CellTimeout, CheckpointJournal,
    FaultPolicy, append_journal_record, result_from_dict,
    run_cell_with_policy,
)
from repro.testbed.scenario import ScenarioSpec


def make_spec(**overrides):
    params = dict(phone="nexus5", tool="ping", emulated_rtt=0.02,
                  count=2, seed=11)
    params.update(overrides)
    return ScenarioSpec(**params)


def stub_result(spec):
    return CellResult(spec.phone, spec.emulated_rtt, spec.tool,
                      spec.cross_traffic, spec.seed, [0.021, 0.022],
                      env=spec.env)


class TestFaultPolicy:
    def test_defaults_are_no_ops(self):
        policy = FaultPolicy()
        assert policy.cell_timeout is None
        assert policy.retries == 0
        assert policy.delays() == ()

    def test_deterministic_exponential_backoff(self):
        policy = FaultPolicy(retries=4, backoff=0.5)
        assert policy.delays() == (0.5, 1.0, 2.0, 4.0)

    def test_round_trips_through_dict(self):
        policy = FaultPolicy(cell_timeout=2.5, retries=3, backoff=0.1)
        clone = FaultPolicy.from_dict(policy.to_dict())
        assert clone.to_dict() == policy.to_dict()

    @pytest.mark.parametrize("kwargs", [
        {"cell_timeout": 0}, {"cell_timeout": -1},
        {"cell_timeout": True}, {"cell_timeout": "5"},
        {"retries": -1}, {"retries": 1.5}, {"retries": True},
        {"backoff": -0.1}, {"backoff": "fast"}, {"backoff": False},
    ])
    def test_rejects_bad_knobs(self, kwargs):
        with pytest.raises(ValueError):
            FaultPolicy(**kwargs)


class TestCellFailure:
    def test_from_spec_captures_identity_and_kind(self):
        spec = make_spec(env="cellular-lte")
        failure = CellFailure.from_spec(spec, ValueError("boom"),
                                        traceback_text="tb", attempts=3,
                                        timeouts=1)
        assert failure.failure is True
        assert failure.kind == "error"
        assert failure.error == "ValueError: boom"
        assert failure.key() == spec.key()
        assert failure.seed == spec.seed

    def test_timeout_kind(self):
        failure = CellFailure.from_spec(make_spec(), CellTimeout("slow"))
        assert failure.kind == "timeout"

    def test_round_trips_through_dict(self):
        failure = CellFailure.from_spec(make_spec(), ValueError("boom"),
                                        traceback_text="tb", attempts=2)
        payload = json.loads(json.dumps(failure.to_dict()))
        clone = CellFailure.from_dict(payload)
        assert clone.to_dict() == failure.to_dict()

    def test_result_from_dict_dispatches_on_failure_flag(self):
        spec = make_spec()
        success = stub_result(spec)
        failure = CellFailure.from_spec(spec, ValueError("boom"))
        assert isinstance(result_from_dict(success.to_dict()), CellResult)
        assert isinstance(result_from_dict(failure.to_dict()),
                          CellFailure)

    def test_cell_result_is_not_a_failure(self):
        assert stub_result(make_spec()).failure is False


class TestCheckpointJournal:
    def test_append_load_round_trip(self, tmp_path):
        spec = make_spec()
        result = stub_result(spec)
        journal = CheckpointJournal(tmp_path / "ck.jsonl")
        with journal:
            journal.append(spec.fingerprint(), result)
        cache = CheckpointJournal(tmp_path / "ck.jsonl").load()
        assert cache == {spec.fingerprint(): result.to_dict()}

    def test_records_carry_version(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        with CheckpointJournal(path) as journal:
            journal.append("fp", stub_result(make_spec()))
        (record,) = [json.loads(line) for line in
                     path.read_text(encoding="utf-8").splitlines()]
        assert record["v"] == JOURNAL_VERSION

    def test_missing_file_loads_empty(self, tmp_path):
        assert CheckpointJournal(tmp_path / "absent.jsonl").load() == {}

    def test_torn_tail_is_dropped(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        spec = make_spec()
        with CheckpointJournal(path) as journal:
            journal.append(spec.fingerprint(), stub_result(spec))
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"v": 1, "fingerprint": "abc", "resu')
        cache = CheckpointJournal(path).load()
        assert list(cache) == [spec.fingerprint()]

    def test_reading_stops_at_first_invalid_record(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        good = {"v": JOURNAL_VERSION, "fingerprint": "aa",
                "result": {"x": 1}}
        wrong_version = {"v": 99, "fingerprint": "bb", "result": {}}
        later = {"v": JOURNAL_VERSION, "fingerprint": "cc",
                 "result": {"x": 2}}
        path.write_text("\n".join(json.dumps(record) for record in
                                  (good, wrong_version, later)) + "\n",
                        encoding="utf-8")
        assert list(CheckpointJournal(path).load()) == ["aa"]

    def test_later_records_win_on_duplicate_fingerprint(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        lines = [{"v": JOURNAL_VERSION, "fingerprint": "aa",
                  "result": {"x": 1}},
                 {"v": JOURNAL_VERSION, "fingerprint": "aa",
                  "result": {"x": 2}}]
        path.write_text("\n".join(json.dumps(line) for line in lines),
                        encoding="utf-8")
        assert CheckpointJournal(path).load()["aa"] == {"x": 2}

    def test_append_requires_open(self, tmp_path):
        journal = CheckpointJournal(tmp_path / "ck.jsonl")
        with pytest.raises(RuntimeError, match="not open"):
            journal.append("fp", stub_result(make_spec()))

    def test_creates_parent_directories(self, tmp_path):
        path = tmp_path / "deep" / "er" / "ck.jsonl"
        with CheckpointJournal(path) as journal:
            journal.append("fp", stub_result(make_spec()))
        assert path.exists()

    def test_helper_writes_one_line_per_record(self, tmp_path):
        path = tmp_path / "raw.jsonl"
        with open(path, "w", encoding="utf-8") as handle:
            append_journal_record(handle, {"a": 1})
            append_journal_record(handle, {"b": 2})
        lines = path.read_text(encoding="utf-8").splitlines()
        assert [json.loads(line) for line in lines] == [{"a": 1},
                                                        {"b": 2}]


class TestRunCellWithPolicy:
    def test_success_passes_through(self, monkeypatch):
        spec = make_spec()
        monkeypatch.setattr(campaign_module, "run_cell",
                            lambda s, collect_metrics=False:
                            stub_result(s))
        result, stats = run_cell_with_policy(spec, FaultPolicy(retries=2))
        assert isinstance(result, CellResult)
        assert stats == {"attempts": 1, "timeouts": 0}

    def test_transient_failure_recovers(self, monkeypatch):
        spec = make_spec()
        state = {"failures": 2}

        def flaky(s, collect_metrics=False):
            if state["failures"]:
                state["failures"] -= 1
                raise RuntimeError("transient")
            return stub_result(s)

        monkeypatch.setattr(campaign_module, "run_cell", flaky)
        result, stats = run_cell_with_policy(spec, FaultPolicy(retries=2))
        assert isinstance(result, CellResult)
        assert stats == {"attempts": 3, "timeouts": 0}

    def test_exhausted_retries_quarantine(self, monkeypatch):
        spec = make_spec()

        def broken(s, collect_metrics=False):
            raise RuntimeError("permanent")

        monkeypatch.setattr(campaign_module, "run_cell", broken)
        result, stats = run_cell_with_policy(spec, FaultPolicy(retries=2))
        assert isinstance(result, CellFailure)
        assert result.attempts == 3
        assert "RuntimeError: permanent" == result.error
        assert "permanent" in result.traceback
        assert stats == {"attempts": 3, "timeouts": 0}

    def test_hung_cell_times_out(self, monkeypatch):
        import time as time_module
        spec = make_spec()

        def hung(s, collect_metrics=False):
            time_module.sleep(30)

        monkeypatch.setattr(campaign_module, "run_cell", hung)
        result, stats = run_cell_with_policy(
            spec, FaultPolicy(cell_timeout=0.05))
        assert isinstance(result, CellFailure)
        assert result.kind == "timeout"
        assert stats == {"attempts": 1, "timeouts": 1}

    def test_no_policy_means_single_plain_attempt(self, monkeypatch):
        spec = make_spec()
        calls = []
        monkeypatch.setattr(
            campaign_module, "run_cell",
            lambda s, collect_metrics=False:
            (calls.append(s), stub_result(s))[1])
        result, stats = run_cell_with_policy(spec)
        assert len(calls) == 1
        assert stats == {"attempts": 1, "timeouts": 0}


class TestCampaignIntegration:
    GRID = dict(phones=("nexus5",), rtts=(0.02,), tools=("ping",),
                count=2)

    def test_resume_without_checkpoint_raises(self):
        campaign = Campaign(**self.GRID)
        with pytest.raises(ValueError, match="checkpoint"):
            campaign.run(workers=1, resume=True)

    def test_quarantine_survives_save_load(self, tmp_path, monkeypatch):
        def broken(spec, collect_metrics=False):
            raise RuntimeError("dead cell")

        monkeypatch.setattr(campaign_module, "run_cell", broken)
        campaign = Campaign(**self.GRID)
        campaign.run(workers=1, retries=1)
        assert len(campaign.quarantine) == 1
        path = tmp_path / "campaign.json"
        campaign.save(path)
        loaded = Campaign.load(path)
        assert len(loaded.quarantine) == 1
        assert loaded.quarantine[0].to_dict() \
            == campaign.quarantine[0].to_dict()

    def test_save_without_quarantine_stays_legacy(self, tmp_path):
        campaign = Campaign(**self.GRID)
        campaign.run(workers=1)
        path = tmp_path / "campaign.json"
        campaign.save(path)
        payload = json.loads(path.read_text(encoding="utf-8"))
        assert "quarantine" not in payload
        assert Campaign.load(path).quarantine == []

    def test_plain_serial_run_resets_resilience_state(self):
        campaign = Campaign(**self.GRID)

        def broken(spec, collect_metrics=False):
            raise RuntimeError("dead cell")

        with pytest.MonkeyPatch.context() as mp:
            mp.setattr(campaign_module, "run_cell", broken)
            campaign.run(workers=1, retries=1)
        assert len(campaign.quarantine) == 1
        assert campaign.run_metrics is not None
        campaign.run(workers=1)
        assert campaign.quarantine == []
        assert campaign.run_metrics is None

    def test_resumed_save_is_byte_identical(self, tmp_path):
        checkpoint = tmp_path / "ck.jsonl"
        original = Campaign(**self.GRID)
        original.run(workers=1, checkpoint=checkpoint)
        original.save(tmp_path / "original.json")
        resumed = Campaign(**self.GRID)
        resumed.run(workers=1, checkpoint=checkpoint, resume=True)
        resumed.save(tmp_path / "resumed.json")
        # The journal preserves payload key order verbatim, so the
        # resumed save file matches byte for byte — not just JSON-equal.
        assert (tmp_path / "resumed.json").read_bytes() \
            == (tmp_path / "original.json").read_bytes()

    def test_scalar_knobs_build_a_policy(self, monkeypatch):
        calls = []

        def broken(spec, collect_metrics=False):
            calls.append(spec.seed)
            raise RuntimeError("dead cell")

        monkeypatch.setattr(campaign_module, "run_cell", broken)
        campaign = Campaign(**self.GRID)
        campaign.run(workers=1, retries=2)
        assert len(calls) == 3
        assert campaign.quarantine[0].attempts == 3
