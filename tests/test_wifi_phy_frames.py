"""Unit tests for 802.11 PHY parameters and frame encodings."""

import pytest

from repro.net.addresses import MacAddress, ip
from repro.net.packet import IcmpEcho, Packet, UdpDatagram
from repro.wifi.frames import (
    AckFrame,
    BeaconFrame,
    DataFrame,
    NullDataFrame,
    decode_data_frame,
)
from repro.wifi.phy import PhyParams


class TestPhyParams:
    def test_difs_is_sifs_plus_two_slots(self):
        phy = PhyParams()
        assert phy.difs == pytest.approx(phy.sifs + 2 * phy.slot_time)

    def test_airtime_scales_with_size_and_rate(self):
        phy = PhyParams()
        small = phy.airtime(100, 54e6)
        large = phy.airtime(1500, 54e6)
        slow = phy.airtime(100, 6e6)
        assert large > small
        assert slow > small
        # 1500 bytes at 54 Mbps: preamble + ~222us + extension.
        assert phy.airtime(1500, 54e6) == pytest.approx(
            20e-6 + 1500 * 8 / 54e6 + 6e-6)

    def test_contention_window_doubles_and_caps(self):
        phy = PhyParams(cw_min=15, cw_max=1023)
        assert phy.contention_window(0) == 15
        assert phy.contention_window(1) == 31
        assert phy.contention_window(2) == 63
        assert phy.contention_window(10) == 1023  # capped

    def test_data_exchange_time_includes_ack(self):
        phy = PhyParams()
        assert phy.data_exchange_time(1500, 54e6) == pytest.approx(
            phy.airtime(1500, 54e6) + phy.sifs + phy.ack_time())

    def test_channel_capacity_under_saturation_is_realistic(self):
        # Single saturated sender, 1470 B UDP at 54 Mbps with protection:
        # practical throughput must land in the 15-25 Mbps band the paper
        # cites for real 802.11g, far below the PHY rate.
        phy = PhyParams(protection_time=120e-6)
        frame_wire = 24 + 8 + 20 + 8 + 1470 + 4
        per_frame = (phy.difs + 7.5 * phy.slot_time + phy.protection_time
                     + phy.airtime(frame_wire, phy.data_rate_bps)
                     + phy.sifs + phy.ack_time())
        throughput = 1470 * 8 / per_frame
        assert 15e6 < throughput < 25e6


def _packet(probe_id=None):
    meta = {"probe_id": probe_id} if probe_id else None
    return Packet(ip("192.168.1.2"), ip("10.0.0.2"),
                  UdpDatagram(40000, 7007, 32), meta=meta)


class TestFrames:
    def test_data_frame_wire_size(self):
        packet = _packet()
        frame = DataFrame(MacAddress.from_index(1), MacAddress.from_index(2),
                          packet)
        assert frame.wire_size == 24 + 8 + packet.wire_size + 4

    def test_data_frame_encode_decode_roundtrip(self):
        packet = _packet(probe_id=321)
        frame = DataFrame(MacAddress.from_index(1), MacAddress.from_index(2),
                          packet, to_ds=True, pm=True, seq=7)
        info, decoded = decode_data_frame(frame.encode())
        assert info["to_ds"] and not info["from_ds"]
        assert info["pm"] is True
        assert info["src_mac"] == frame.src_mac
        assert info["dst_mac"] == frame.dst_mac
        assert decoded.probe_id == 321
        assert decoded.payload.dst_port == 7007

    def test_encoded_length_matches_wire_size(self):
        frame = DataFrame(MacAddress.from_index(1), MacAddress.from_index(2),
                          _packet())
        assert len(frame.encode()) == frame.wire_size

    def test_null_frame_pm_bit(self):
        null = NullDataFrame(MacAddress.from_index(1),
                             MacAddress.from_index(2), pm=True)
        encoded = null.encode()
        assert encoded[1] & 0x10  # PM bit set in frame control
        assert null.wire_size == 28
        assert decode_data_frame(encoded) is None  # not a data frame

    def test_beacon_is_broadcast_and_needs_no_ack(self):
        beacon = BeaconFrame(MacAddress.from_index(1), 100)
        assert beacon.is_broadcast
        assert not beacon.needs_ack

    def test_beacon_tim_encoded(self):
        beacon = BeaconFrame(MacAddress.from_index(1), 100,
                             tim_aids={1, 3})
        assert beacon.tim_aids == frozenset({1, 3})
        encoded = beacon.encode()
        assert len(encoded) == beacon.wire_size
        # The TIM bitmap byte must have bits 1 and 3 set.
        assert encoded[-5] == (1 << 1) | (1 << 3)

    def test_beacon_interval_field(self):
        beacon = BeaconFrame(MacAddress.from_index(1), 100)
        encoded = beacon.encode()
        # Fixed fields start after the 24-byte header: timestamp(8)+interval(2).
        interval = int.from_bytes(encoded[32:34], "little")
        assert interval == 100

    def test_ack_frame(self):
        ack = AckFrame(MacAddress.from_index(1), MacAddress.from_index(2))
        assert ack.wire_size == 14
        assert not ack.needs_ack
        assert len(ack.encode()) == 14

    def test_more_data_bit(self):
        frame = DataFrame(MacAddress.from_index(1), MacAddress.from_index(2),
                          _packet(), from_ds=True, more_data=True)
        info, _ = decode_data_frame(frame.encode())
        assert info["more_data"] is True
        assert info["from_ds"] is True
