"""Seed robustness: the headline shapes hold across independent seeds.

The integration tests pin shapes at one seed; these re-check the two
most important claims over several seeds, so a fluke draw cannot be
doing the work.
"""

import statistics

import pytest

from repro.testbed.experiments import acutemon_experiment, ping_experiment

SEEDS = (11, 222, 3333)


class TestAcrossSeeds:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_acutemon_median_overhead_under_3ms(self, seed):
        result = acutemon_experiment("nexus5", emulated_rtt=0.085,
                                     count=30, seed=seed)
        assert result.overheads.box("total").median < 3.3e-3

    @pytest.mark.parametrize("seed", SEEDS)
    def test_sdio_inflation_at_1s_interval(self, seed):
        result = ping_experiment("nexus5", emulated_rtt=0.030,
                                 interval=1.0, count=20, seed=seed)
        du = statistics.mean(result.layers["du"])
        dn = statistics.mean(result.layers["dn"])
        assert 0.008 < du - dn < 0.020  # ~one bus wake
        assert abs(dn - 0.0305) < 0.003  # network stays clean

    @pytest.mark.parametrize("seed", SEEDS)
    def test_psm_inflation_on_nexus4(self, seed):
        result = ping_experiment("nexus4", emulated_rtt=0.060,
                                 interval=1.0, count=20, seed=seed)
        dn = statistics.mean(result.layers["dn"])
        assert dn > 0.085  # beacon buffering inflates the network RTT

    def test_seed_changes_samples_not_conclusions(self):
        medians = []
        for seed in SEEDS:
            result = acutemon_experiment("nexus5", emulated_rtt=0.050,
                                         count=30, seed=seed)
            medians.append(statistics.median(result.user_rtts))
        # Different draws...
        assert len(set(medians)) == len(SEEDS)
        # ...same answer.
        assert max(medians) - min(medians) < 1.5e-3
