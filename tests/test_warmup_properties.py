"""Property tests for the warm-up policy (the core scheduling rule)."""

from hypothesis import assume, given
from hypothesis import strategies as st

from repro.core.warmup import WarmupPolicy

timer = st.floats(min_value=1e-3, max_value=1.0,
                  allow_nan=False, allow_infinity=False)


class TestPolicyProperties:
    @given(t_prom=timer, t_is=timer, t_ip=timer)
    def test_recommend_always_valid_when_feasible(self, t_prom, t_is, t_ip):
        assume(t_prom < min(t_is, t_ip) * 0.99)
        policy = WarmupPolicy(t_prom=t_prom, t_is=t_is, t_ip=t_ip)
        plan = policy.recommend()
        assert plan.valid
        assert plan.violations() == []

    @given(t_prom=timer, t_is=timer, t_ip=timer,
           dpre=timer, db=timer)
    def test_valid_iff_no_violations(self, t_prom, t_is, t_ip, dpre, db):
        policy = WarmupPolicy(t_prom=t_prom, t_is=t_is, t_ip=t_ip)
        plan = policy.plan(dpre=dpre, db=db)
        assert plan.valid == (plan.violations() == [])

    @given(t_prom=timer, t_is=timer, t_ip=timer)
    def test_recommended_dpre_between_bounds(self, t_prom, t_is, t_ip):
        assume(t_prom < min(t_is, t_ip) * 0.99)
        plan = WarmupPolicy(t_prom=t_prom, t_is=t_is, t_ip=t_ip).recommend()
        assert t_prom < plan.dpre < min(t_is, t_ip)
        assert 0 < plan.db < min(t_is, t_ip)

    @given(t_is=timer, t_ip=timer)
    def test_demotion_floor_is_min(self, t_is, t_ip):
        policy = WarmupPolicy(t_prom=1e-4, t_is=t_is, t_ip=t_ip)
        assert policy.plan().demotion_floor == min(t_is, t_ip)
