"""Tests for phone tcpdump, probe timelines, and traceroute."""

import pytest

from repro.analysis.timeline import probe_timeline
from repro.core.measurement import ProbeCollector
from repro.phone.tcpdump import PhoneTcpdump, kernel_rtts_from_pcap
from repro.sniffer.pcap import LINKTYPE_IEEE802_11, PcapWriter
from repro.testbed.topology import Testbed
from repro.tools.ping import PingTool
from repro.tools.traceroute import TracerouteTool


def build(seed=71, rtt=0.03):
    testbed = Testbed(seed=seed, emulated_rtt=rtt)
    phone = testbed.add_phone("nexus5")
    collector = ProbeCollector(phone)
    testbed.settle(0.5)
    return testbed, phone, collector


class TestPhoneTcpdump:
    def test_capture_and_offline_dk(self, tmp_path):
        path = tmp_path / "phone.pcap"
        testbed, phone, collector = build()
        with PhoneTcpdump(phone, path) as dump:
            tool = PingTool(phone, collector, testbed.server_ip,
                            interval=0.05)
            tool.run_sync(10)
        assert dump.packets_captured >= 20  # requests + replies
        offline = kernel_rtts_from_pcap(path, phone.ip_addr)
        live = {r.probe_id: r.dk for r in collector.completed()}
        assert set(offline) == set(live)
        for probe_id, dk in offline.items():
            # pcap rounds to microseconds.
            assert dk == pytest.approx(live[probe_id], abs=2e-6)

    def test_closed_capture_stops_recording(self, tmp_path):
        path = tmp_path / "phone.pcap"
        testbed, phone, collector = build()
        dump = PhoneTcpdump(phone, path)
        dump.close()
        tool = PingTool(phone, collector, testbed.server_ip, interval=0.05)
        tool.run_sync(3)
        assert dump.packets_captured == 0

    def test_tcp_probe_dk_prefers_substantive_response(self, tmp_path):
        path = tmp_path / "phone.pcap"
        testbed, phone, collector = build()
        with PhoneTcpdump(phone, path):
            record = collector.new_probe()
            conn = phone.stack.tcp.connect(
                testbed.server_ip, 80, meta=collector.meta_for(record))
            conn.on_connected = lambda c: c.send(
                100, meta=collector.meta_for(record))
            testbed.run(1.0)
        offline = kernel_rtts_from_pcap(path, phone.ip_addr)
        assert record.probe_id in offline
        assert offline[record.probe_id] > 0

    def test_wrong_linktype_rejected(self, tmp_path):
        path = tmp_path / "air.pcap"
        with PcapWriter(path, linktype=LINKTYPE_IEEE802_11) as writer:
            writer.write(0.0, b"x")
        from repro.net.addresses import ip

        with pytest.raises(ValueError):
            kernel_rtts_from_pcap(path, ip("192.168.1.2"))


class TestTimeline:
    def _one_record(self):
        testbed, phone, collector = build()
        tool = PingTool(phone, collector, testbed.server_ip, interval=0.05)
        tool.run_sync(1)
        return testbed, collector.completed()[0]

    def test_events_time_ordered(self):
        _testbed, record = self._one_record()
        timeline = probe_timeline(record)
        times = [event.time for event in timeline.events]
        assert times == sorted(times)
        assert len(timeline.events) >= 9  # user+4 down, 4 up+user

    def test_span_covers_du(self):
        _testbed, record = self._one_record()
        timeline = probe_timeline(record)
        assert timeline.span() >= record.du - 1e-9

    def test_render_mentions_vantage_points(self):
        _testbed, record = self._one_record()
        text = probe_timeline(record).render()
        for token in ("tou", "tok", "ton", "tin", "tik", "du=", "dn="):
            assert token in text, token

    def test_gaps_identify_the_network_wait(self):
        _testbed, record = self._one_record()
        timeline = probe_timeline(record)
        biggest_gap, from_event, to_event = timeline.gaps()[0]
        # On a clean probe the dominant gap is the on-air RTT.
        assert biggest_gap == pytest.approx(record.dn, rel=0.2)
        assert from_event.layer == "air"

    def test_capture_events_included(self):
        testbed, phone, collector = build()
        tool = PingTool(phone, collector, testbed.server_ip, interval=0.05)
        tool.run_sync(1)
        record = collector.completed()[0]
        timeline = probe_timeline(record,
                                  capture=testbed.merged_capture())
        sniffer_lines = [e for e in timeline.events
                         if "sniffer" in e.label]
        assert len(sniffer_lines) >= 2  # request + response on the air


class TestTraceroute:
    def test_two_hop_path_discovered(self):
        testbed, phone, collector = build()
        tool = TracerouteTool(phone, collector, testbed.server_ip)
        tool.run_sync(1)
        assert len(tool.hops) == 2
        first, second = tool.hops
        assert str(first.address) == "192.168.1.1"  # the AP's WLAN face
        assert second.address == testbed.server_ip
        assert tool.reached_target
        assert first.rtt < second.rtt  # hop 2 includes the emulated RTT

    def test_hop_rtts_sane(self):
        testbed, phone, collector = build(rtt=0.05)
        tool = TracerouteTool(phone, collector, testbed.server_ip)
        tool.run_sync(1)
        assert tool.hops[0].rtt < 0.03
        assert tool.hops[1].rtt == pytest.approx(0.055, abs=0.02)

    def test_render(self):
        testbed, phone, collector = build()
        tool = TracerouteTool(phone, collector, testbed.server_ip)
        tool.run_sync(1)
        text = tool.render()
        assert "traceroute to" in text
        assert "192.168.1.1" in text

    def test_unreachable_tail_times_out(self):
        from repro.net.addresses import ip

        testbed, phone, collector = build()
        tool = TracerouteTool(phone, collector, ip("10.0.0.99"),
                              max_ttl=3, probe_timeout=0.2)
        tool.run_sync(1)
        assert len(tool.hops) == 3
        assert not tool.hops[-1].timed_out or tool.hops[-1].address is None
        assert not tool.reached_target
        # Hop 1 (the AP) still answers.
        assert str(tool.hops[0].address) == "192.168.1.1"
