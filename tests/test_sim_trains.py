"""Periodic-train behavior: cancellation, re-anchoring, obs accounting.

``Simulator.schedule_periodic`` keeps one armed
:class:`~repro.sim.events.PeriodicEvent` per train and (with
observability off) fires whole batches of ticks per queue pop.  These
tests pin the behavior that batching must not change: cancellation from
inside and outside the callback, the anchored grid surviving
``run(until=...)`` splits, ``first=`` and ``rearm_after=`` anchoring
modes, interleaving with competing one-shots, and exactly-once metric
accounting per tick in serial, resumed, and parallel campaigns.
"""

import json

import pytest

from repro.obs import enable_observability
from repro.sim import PeriodicTimer, SimTimeError, Simulator
from repro.testbed.campaign import Campaign


class TestCancellation:
    def test_cancel_from_outside_stops_future_ticks(self):
        sim = Simulator(seed=0)
        ticks = []
        train = sim.schedule_periodic(0.1, lambda: ticks.append(sim.now))
        sim.schedule(0.35, train.cancel)
        sim.run()
        assert ticks == pytest.approx([0.1, 0.2, 0.3])
        assert sim.pending() == 0

    def test_cancel_from_own_callback_mid_batch(self):
        """A self-cancelling callback stops the train even while the
        scheduler is firing a batch of its ticks."""
        sim = Simulator(seed=0)
        ticks = []

        def tick():
            ticks.append(sim.now)
            if len(ticks) == 5:
                train.cancel()

        train = sim.schedule_periodic(0.01, tick)
        sim.run(until=10.0)
        assert len(ticks) == 5
        assert train.ticks == 5
        assert sim.pending() == 0

    def test_cancel_counts_once_in_accounting(self):
        sim = Simulator(seed=0)
        train = sim.schedule_periodic(1.0, lambda: None)
        assert sim.pending() == 1
        train.cancel()
        assert sim.pending() == 0
        assert sim.events_canceled == 1
        sim.run()
        assert sim.events_fired == 0


class TestAnchoring:
    def test_grid_survives_run_until_splits(self):
        """Resuming with run(until=...) continues the same absolute
        grid — tick times are identical to an unsplit run."""
        split_times, straight_times = [], []

        sim = Simulator(seed=0)
        sim.schedule_periodic(0.25, lambda: split_times.append(sim.now))
        for boundary in (0.3, 0.5, 1.1, 2.0, 3.0):
            sim.run(until=boundary)
        reference = Simulator(seed=0)
        reference.schedule_periodic(
            0.25, lambda: straight_times.append(reference.now))
        reference.run(until=3.0)

        assert split_times == straight_times
        assert split_times[:4] == pytest.approx([0.25, 0.5, 0.75, 1.0])

    def test_phase_delays_first_tick_only(self):
        sim = Simulator(seed=0)
        times = []
        sim.schedule_periodic(1.0, lambda: times.append(sim.now),
                              phase=0.5)
        sim.run(until=4.0)
        assert times == pytest.approx([1.5, 2.5, 3.5])

    def test_first_pins_absolute_start(self):
        """``first=`` anchors the grid at an absolute time — the STA's
        TBTT wake grid — with ticks at first + k*period."""
        sim = Simulator(seed=0)
        times = []
        sim.run(until=0.7)
        sim.schedule_periodic(1.0, lambda: times.append(sim.now),
                              first=2.2)
        sim.run(until=5.0)
        assert times == pytest.approx([2.2, 3.2, 4.2])

    def test_first_and_phase_are_exclusive(self):
        sim = Simulator(seed=0)
        with pytest.raises(ValueError):
            sim.schedule_periodic(1.0, lambda: None, phase=0.5, first=2.0)

    def test_first_in_the_past_rejected(self):
        sim = Simulator(seed=0)
        sim.run(until=5.0)
        with pytest.raises(SimTimeError):
            sim.schedule_periodic(1.0, lambda: None, first=4.0)

    def test_invalid_period_rejected(self):
        sim = Simulator(seed=0)
        for bad in (0.0, -1.0, float("inf"), float("nan")):
            with pytest.raises(ValueError):
                sim.schedule_periodic(bad, lambda: None)

    def test_rearm_after_reanchors_on_fire_time(self):
        """Chained mode re-arms at now + period after the callback —
        AcuteMon's inter-train gap semantics."""
        sim = Simulator(seed=0)
        times = []
        sim.schedule_periodic(1.0, lambda: times.append(sim.now),
                              rearm_after=True)
        sim.run(until=3.5)
        assert times == pytest.approx([1.0, 2.0, 3.0])


class TestPeriodicTimerWrapper:
    def test_stop_then_restart_reanchors(self):
        sim = Simulator(seed=0)
        times = []
        timer = PeriodicTimer(sim, 1.0, lambda: times.append(sim.now))
        timer.start()
        sim.run(until=2.5)
        timer.stop()
        assert not timer.running
        assert timer.ticks == 2  # count survives the stop
        sim.run(until=4.7)
        timer.start()
        assert timer.next_deadline() == pytest.approx(5.7)
        sim.run(until=7.0)
        assert times == pytest.approx([1.0, 2.0, 5.7, 6.7])

    def test_stop_from_callback_sticks(self):
        sim = Simulator(seed=0)
        fired = []
        timer = PeriodicTimer(sim, 0.5, lambda: (fired.append(sim.now),
                                                 timer.stop()))
        timer.start()
        sim.run()
        assert fired == pytest.approx([0.5])
        assert sim.pending() == 0


class TestBatchOrdering:
    def test_train_interleaves_with_competing_one_shots(self):
        """A dense train and one-shots landing on, between, and tied
        with its ticks fire in exactly (time, seq) order — the batch
        fast path must yield wherever a competitor interleaves."""
        sim = Simulator(seed=0)
        log = []
        sim.schedule_periodic(0.1, lambda: log.append(("tick", sim.now)))
        marks = [0.05, 0.1, 0.25, 0.3000001, 0.5, 0.9999999]
        for mark in marks:
            sim.schedule(mark, lambda m=mark: log.append(("shot", m)))
        sim.run(until=1.0)

        # Same-instant tie at t=0.1: the train was registered first, so
        # its tick precedes the one-shot (FIFO by seq).
        assert log[1] == ("tick", pytest.approx(0.1))
        assert log[2] == ("shot", 0.1)
        assert len(log) == 10 + len(marks)
        assert [entry[1] for entry in log] \
            == pytest.approx([0.05, 0.1, 0.1, 0.2, 0.25, 0.3, 0.3000001,
                              0.4, 0.5, 0.5, 0.6, 0.7, 0.8, 0.9,
                              0.9999999, 1.0])

    def test_callback_scheduling_ahead_of_batch_is_honored(self):
        """A tick that schedules a one-shot before the train's next tick
        interrupts the batch so the one-shot fires in order."""
        sim = Simulator(seed=0)
        log = []

        def tick():
            log.append(("tick", sim.now))
            if len(log) == 1:
                sim.schedule(0.05, lambda: log.append(("mid", sim.now)))

        sim.schedule_periodic(0.1, tick)
        sim.run(until=0.35)
        assert log == [("tick", pytest.approx(0.1)),
                       ("mid", pytest.approx(0.15)),
                       ("tick", pytest.approx(0.2)),
                       ("tick", pytest.approx(0.3))]


class TestObsAccounting:
    @staticmethod
    def _fired(sim, category):
        return sim.metrics.counter("scheduler_events_fired_total",
                                   labels={"category": category}).value

    def test_metrics_count_each_tick_exactly_once_serial(self):
        sim = enable_observability(Simulator(seed=0))
        train = sim.schedule_periodic(0.1, lambda: None, label="bg:x")
        sim.run(until=2.0)
        assert self._fired(sim, "bg") == 20
        assert train.ticks == 20
        assert sim.events_fired == 20

    def test_metrics_count_each_tick_exactly_once_resumed(self):
        sim = enable_observability(Simulator(seed=0))
        sim.schedule_periodic(0.1, lambda: None, label="bg:x")
        for boundary in (0.55, 1.0, 1.45, 2.0):
            sim.run(until=boundary)
        assert self._fired(sim, "bg") == 20

    def test_fast_and_observed_paths_agree_on_counts(self):
        observed = enable_observability(Simulator(seed=0))
        fast = Simulator(seed=0)
        for sim in (observed, fast):
            sim.schedule_periodic(0.01, lambda: None, label="bg:x")
            sim.run(until=3.0)
        assert observed.events_fired == fast.events_fired == 300
        assert self._fired(observed, "bg") == 300

    def test_parallel_campaign_with_trains_stays_bit_identical(self):
        """The watchdog/beacon/background trains run inside every cell;
        the serial==parallel bit-identity contract must survive them."""
        def grid():
            return Campaign(phones=("nexus5",), rtts=(0.02, 0.05),
                            tools=("acutemon", "ping"), count=3)

        serial = grid()
        serial.run(workers=1)
        reference = json.dumps(
            [result.to_dict() for result in serial.results],
            sort_keys=True)
        parallel = grid()
        parallel.run(workers=2)
        assert json.dumps(
            [result.to_dict() for result in parallel.results],
            sort_keys=True) == reference
