"""Ablation A3 — PSM inflation vs listen interval and beacon interval.

§3.2.2 bounds the PSM-induced inflation by ``IB * (L + 1)`` (beacon
interval times listen interval + 1).  This bench measures the actual
worst-case and mean inflation of beacon-buffered responses while
sweeping L (0, 1, 2, 4) and IB (50, 100, 200 TU), confirming the bound
and its linearity.
"""

import statistics

from repro.analysis.render import Table
from repro.core.measurement import ProbeCollector
from repro.phone.profiles import PhoneProfile, NEXUS_4
from repro.sim.units import tu
from repro.testbed.topology import Testbed
from repro.tools.ping import PingTool

from paper_reference import save_report

PROBES = 40


def _profile_with_listen_interval(listen_interval):
    base = NEXUS_4
    return PhoneProfile(
        key=f"nexus4-L{listen_interval}", name=base.name,
        android_version=base.android_version, cpu_desc=base.cpu_desc,
        cores=base.cores, ram_mb=base.ram_mb, chipset=base.chipset,
        cpu_factor=base.cpu_factor, psm_timeout=base.psm_timeout,
        psm_timeout_jitter=0.0,
        listen_interval_assoc=base.listen_interval_assoc,
        listen_interval_actual=listen_interval,
    )


def measure_inflation(listen_interval, beacon_tu, seed):
    """Mean/max network-level inflation of PSM-buffered responses."""
    rtt = 0.060  # > Tip (40 ms): every sparse probe's response buffers.
    testbed = Testbed(seed=seed, emulated_rtt=rtt,
                      beacon_interval_tu=beacon_tu)
    phone = testbed.add_phone(_profile_with_listen_interval(listen_interval))
    collector = ProbeCollector(phone)
    testbed.settle(0.5)
    tool = PingTool(phone, collector, testbed.server_ip, interval=1.0,
                    timeout=3.0)
    tool.run_sync(PROBES, deadline=testbed.sim.now + PROBES * 1.0 + 10)
    inflations = [dn - rtt for dn in collector.layered_rtts()["dn"]]
    return inflations


def run_sweep():
    cells = {}
    for index, listen_interval in enumerate((0, 1, 2, 4)):
        cells[("L", listen_interval)] = measure_inflation(
            listen_interval, 100, seed=9800 + index)
    for index, beacon_tu in enumerate((50, 100, 200)):
        cells[("IB", beacon_tu)] = measure_inflation(
            0, beacon_tu, seed=9850 + index)
    return cells


def test_ablation_psm_inflation_bound(benchmark):
    cells = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    table = Table(
        ["Sweep", "Value", "Mean inflation (ms)", "Max inflation (ms)",
         "Bound IB*(L+1) (ms)"],
        title="Ablation A3: PSM inflation vs listen interval and beacon "
              "interval (Nexus 4-like, RTT 60ms > Tip)",
    )
    for (kind, value), inflations in cells.items():
        if kind == "L":
            bound = tu(100) * (value + 1)
        else:
            bound = tu(value) * 1
        table.add_row(
            kind, value,
            f"{statistics.mean(inflations) * 1e3:.1f}",
            f"{max(inflations) * 1e3:.1f}",
            f"{bound * 1e3:.1f}",
        )
    save_report("ablation_psm", table.render())

    # The paper's bound holds (with a small scheduling slack).
    for (kind, value), inflations in cells.items():
        bound = tu(100) * (value + 1) if kind == "L" else tu(value)
        assert max(inflations) <= bound + 0.012, (kind, value)

    # Inflation grows with L and with IB.
    mean_of = {key: statistics.mean(v) for key, v in cells.items()}
    assert mean_of[("L", 4)] > mean_of[("L", 1)] > mean_of[("L", 0)] * 0.8
    assert mean_of[("IB", 200)] > mean_of[("IB", 50)]
    # Max inflation with L=4 exceeds 2 beacon intervals: far beyond the
    # 100 ms figure the paper quotes for L=0.
    assert max(cells[("L", 4)]) > 0.2
