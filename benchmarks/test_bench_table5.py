"""Table 5 — actual nRTTs (dn) measured under AcuteMon (§4.2.1).

All five phones, emulated RTTs of 20/50/85/135 ms, 100 TCP probes per
cell.  The paper's claim: the sniffer-observed dn stays within ~3 ms of
the emulated value on every phone and at every RTT (no PSM activity, no
bus sleeps during the measurement window).
"""

from repro.analysis.render import Table, fmt_mean_ci
from repro.analysis.stats import SummaryStats
from repro.testbed.experiments import acutemon_experiment

from paper_reference import TABLE5, PHONE_NAMES, save_report

PROBES = 100
RTTS_MS = (20, 50, 85, 135)
PHONES = ("nexus5", "xperia_j", "galaxy_grand", "nexus4", "htc_one")


def run_table5():
    cells = {}
    for p_index, phone in enumerate(PHONES):
        for r_index, rtt_ms in enumerate(RTTS_MS):
            result = acutemon_experiment(
                phone, emulated_rtt=rtt_ms * 1e-3, count=PROBES,
                seed=5000 + p_index * 10 + r_index,
            )
            cells[(phone, rtt_ms)] = {
                "dn": SummaryStats(result.layers["dn"]),
                "losses": result.acutemon.loss_count(),
                "doze": result.phone.sta.doze_count,
            }
    return cells


def test_table5_acutemon_actual_nrtt(benchmark):
    cells = benchmark.pedantic(run_table5, rounds=1, iterations=1)

    table = Table(
        ["Phone"] + [f"{r}ms" for r in RTTS_MS]
        + [f"paper {r}ms" for r in RTTS_MS],
        title=f"Table 5: actual nRTT dn under AcuteMon "
              f"(mean±95% CI, ms; {PROBES} TCP probes)",
    )
    for phone in PHONES:
        measured = [fmt_mean_ci(cells[(phone, r)]["dn"], digits=3)
                    for r in RTTS_MS]
        paper = [f"{TABLE5[(phone, r)]:.3f}" for r in RTTS_MS]
        table.add_row(PHONE_NAMES[phone], *measured, *paper)
    save_report("table5", table.render())

    for (phone, rtt_ms), cell in cells.items():
        dn_ms = cell["dn"].mean * 1e3
        # "most of the deviations are kept within 3ms".
        assert abs(dn_ms - rtt_ms) < 3.0, (phone, rtt_ms, dn_ms)
        # CI stays tight (paper: all within ±1.2 ms).
        assert cell["dn"].ci95 * 1e3 < 1.5, (phone, rtt_ms)
        assert cell["losses"] == 0, (phone, rtt_ms)
