"""Figure 9 — effect of AcuteMon's own background traffic (§4.4).

The control experiment: with the SDIO sleep feature disabled in the
driver and an emulated RTT (30 ms) safely below the Nexus 5's PSM
timeout (~205 ms), the phone stays awake with or without background
traffic — so any difference between the two CDFs is the footprint of
the background packets themselves.  The paper finds that difference
negligible; the congested-network RTT increase comes from the cross
traffic, not from AcuteMon's ~50 packets.
"""

from repro.analysis.cdf import Cdf
from repro.analysis.render import render_cdf
from repro.testbed.experiments import acutemon_experiment

from paper_reference import save_report

PROBES = 100


def run_fig9():
    def one(background, cross):
        result = acutemon_experiment(
            "nexus5", emulated_rtt=0.030, count=PROBES, seed=9000,
            cross_traffic=cross, bus_sleep=False,
            background_enabled=background, warmup_enabled=background,
        )
        return result.user_rtts

    return {
        "with_bg": one(background=True, cross=True),
        "without_bg": one(background=False, cross=True),
        "no_cross": one(background=True, cross=False),
    }


def test_fig9_background_traffic_effect(benchmark):
    series = benchmark.pedantic(run_fig9, rounds=1, iterations=1)

    cdfs = {name: Cdf(values) for name, values in series.items()}
    lines = ["Figure 9: AcuteMon with/without background traffic "
             "(bus sleep disabled, cross traffic, ms)"]
    for name in ("with_bg", "without_bg", "no_cross"):
        lines.append(render_cdf(cdfs[name], label=name))
    shift = cdfs["with_bg"].shift_versus(cdfs["without_bg"])
    lines.append("")
    lines.append("with_bg - without_bg quantile shifts (ms): "
                 + "  ".join(f"p{int(p * 100)}={d * 1e3:+.2f}"
                             for p, d in shift.items()))
    save_report("fig9", "\n".join(lines))

    # The background traffic's own effect is very small (< ~1.5 ms at the
    # median), while cross traffic accounts for the visible shift.
    bg_effect = abs(cdfs["with_bg"].median - cdfs["without_bg"].median)
    cross_effect = cdfs["with_bg"].median - cdfs["no_cross"].median
    assert bg_effect < 1.5e-3
    assert cross_effect > bg_effect
