"""Table 2 — RTTs measured at different layers (§3.1).

Regenerates the multi-layer ping experiment: Nexus 4 and Nexus 5,
emulated RTTs of 30 ms and 60 ms, packet sending intervals of 10 ms and
1 s, 100 ICMP probes per cell.  Reports du (app), dk (tcpdump) and dn
(sniffers) with 95% confidence intervals, alongside the paper's values.

Expected shape: at 10 ms intervals all layers sit near the emulated RTT;
at 1 s intervals the Nexus 5 inflates *internally* (SDIO bus wake, one
wake at 30 ms, two at 60 ms) while the Nexus 4 at 60 ms inflates mostly
*in the network* (Tip = 40 ms < RTT, so responses wait for beacons).
"""

from repro.analysis.render import Table, fmt_mean_ci
from repro.analysis.stats import SummaryStats
from repro.testbed.experiments import ping_experiment

from paper_reference import TABLE2, PHONE_NAMES, save_report

PROBES = 100
CELLS = [
    (phone, rtt_ms, label, interval)
    for phone in ("nexus4", "nexus5")
    for rtt_ms in (30, 60)
    for label, interval in (("10ms", 0.010), ("1s", 1.0))
]


def run_table2():
    rows = {}
    for index, (phone, rtt_ms, label, interval) in enumerate(CELLS):
        result = ping_experiment(
            phone, emulated_rtt=rtt_ms * 1e-3, interval=interval,
            count=PROBES, seed=1000 + index,
        )
        rows[(phone, rtt_ms, label)] = {
            layer: SummaryStats(result.layers[layer])
            for layer in ("du", "dk", "dn")
        }
    return rows


def test_table2_multilayer_rtts(benchmark):
    rows = benchmark.pedantic(run_table2, rounds=1, iterations=1)

    table = Table(
        ["Phone", "RTT", "Intv.",
         "du (ms)", "dk (ms)", "dn (ms)",
         "paper du", "paper dk", "paper dn"],
        title=f"Table 2: RTTs measured at different layers "
              f"(mean±95% CI over {PROBES} probes)",
    )
    for (phone, rtt_ms, label), stats in rows.items():
        paper = TABLE2[(phone, rtt_ms, label)]
        table.add_row(
            PHONE_NAMES[phone], f"{rtt_ms}ms", label,
            fmt_mean_ci(stats["du"]), fmt_mean_ci(stats["dk"]),
            fmt_mean_ci(stats["dn"]),
            f"{paper[0]:.2f}", f"{paper[1]:.2f}", f"{paper[2]:.2f}",
        )
    save_report("table2", table.render())

    # Shape assertions.
    def du(phone, rtt, label):
        return rows[(phone, rtt, label)]["du"].mean * 1e3

    def dn(phone, rtt, label):
        return rows[(phone, rtt, label)]["dn"].mean * 1e3

    # Fast probing is accurate everywhere.
    for phone in ("nexus4", "nexus5"):
        for rtt in (30, 60):
            assert abs(du(phone, rtt, "10ms") - rtt) < 5
    # 1 s probing inflates du on both phones.
    assert du("nexus5", 30, "1s") > du("nexus5", 30, "10ms") + 5
    assert du("nexus4", 60, "1s") > du("nexus4", 60, "10ms") + 15
    # Nexus 5's inflation is internal (dn stays clean) ...
    assert abs(dn("nexus5", 30, "1s") - 31) < 4
    # ... Nexus 4's 60 ms inflation is in the network (PSM buffering).
    assert dn("nexus4", 60, "1s") > 90
