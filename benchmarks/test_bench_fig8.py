"""Figure 8 — CDFs of RTTs: AcuteMon vs httping, ping and Java ping
(§4.3), with and without iPerf cross-traffic.

Nexus 5, emulated RTT 30 ms, K = 100 probes per tool; cross traffic is
10 UDP flows at 2.5 Mbps each from a wireless load generator.

Expected shape: AcuteMon's CDF sits ~10 ms to the left of every other
tool in both scenarios (the others pay the SDIO wake on every probe at
their 1 s cadence); with cross traffic everything shifts right but the
ordering is preserved.
"""

from repro.analysis.cdf import Cdf
from repro.analysis.render import render_cdf
from repro.testbed.experiments import tool_comparison

from paper_reference import save_report

PROBES = 100
TOOLS = ("acutemon", "httping", "ping", "javaping")


def run_fig8():
    return {
        "without": tool_comparison(
            "nexus5", emulated_rtt=0.030, count=PROBES, seed=8000,
            cross_traffic=False, tools=TOOLS),
        "with": tool_comparison(
            "nexus5", emulated_rtt=0.030, count=PROBES, seed=8100,
            cross_traffic=True, tools=TOOLS),
    }


def test_fig8_tool_comparison_cdfs(benchmark):
    scenarios = benchmark.pedantic(run_fig8, rounds=1, iterations=1)

    lines = ["Figure 8: RTT CDFs, AcuteMon vs other tools (ms)"]
    cdfs = {}
    for scenario in ("without", "with"):
        lines.append("")
        lines.append(f"-- {scenario} cross traffic --")
        for tool in TOOLS:
            cdf = Cdf(scenarios[scenario][tool])
            cdfs[(scenario, tool)] = cdf
            lines.append(render_cdf(cdf, label=tool))
    save_report("fig8", "\n".join(lines))

    for scenario in ("without", "with"):
        acute = cdfs[(scenario, "acutemon")]
        for tool in ("httping", "ping", "javaping"):
            other = cdfs[(scenario, tool)]
            # Paper: "the differences ... are almost larger than 10ms".
            assert other.median - acute.median > 8e-3, (scenario, tool)

    # Without cross traffic, ~90% of AcuteMon RTTs are below 35 ms.
    assert cdfs[("without", "acutemon")].fraction_below(0.035) >= 0.85

    # Cross traffic shifts every tool right.
    for tool in TOOLS:
        assert (cdfs[("with", tool)].quantile(0.9)
                > cdfs[("without", tool)].quantile(0.9)), tool
