"""Figure 3 — box plots of Δdk−n and Δdu−k (§3.1).

Same experiment as Table 2, rendered as the overhead decomposition:
kernel-to-PHY overhead (where SDIO wake and PSM buffering land) and
user-to-kernel overhead (tiny; occasionally *negative* on the Nexus 4
because its ping truncates RTTs above 100 ms to integer milliseconds).
"""

from repro.analysis.render import render_boxplot_row
from repro.testbed.experiments import ping_experiment

from paper_reference import save_report

PROBES = 100
CELLS = [
    ("nexus4", 30, "10ms", 0.010),
    ("nexus5", 30, "10ms", 0.010),
    ("nexus4", 30, "1s", 1.0),
    ("nexus5", 30, "1s", 1.0),
    ("nexus4", 60, "10ms", 0.010),
    ("nexus4", 60, "1s", 1.0),
    ("nexus5", 60, "10ms", 0.010),
    ("nexus5", 60, "1s", 1.0),
]


def run_fig3():
    cells = {}
    for index, (phone, rtt_ms, label, interval) in enumerate(CELLS):
        result = ping_experiment(
            phone, emulated_rtt=rtt_ms * 1e-3, interval=interval,
            count=PROBES, seed=3000 + index,
        )
        cells[(phone, rtt_ms, label)] = result.overheads
    return cells


def test_fig3_overhead_boxplots(benchmark):
    cells = benchmark.pedantic(run_fig3, rounds=1, iterations=1)

    lines = ["Figure 3: kernel-phy (dk_n) and user-kernel (du_k) overheads",
             "", "-- Δdk−n (ms) --"]
    for key, overheads in cells.items():
        phone, rtt, label = key
        lines.append(render_boxplot_row(
            f"{phone} {rtt}ms ({label})", overheads.box("dk_n")))
    lines.append("")
    lines.append("-- Δdu−k (ms) --")
    for key, overheads in cells.items():
        phone, rtt, label = key
        lines.append(render_boxplot_row(
            f"{phone} {rtt}ms ({label})", overheads.box("du_k")))
    save_report("fig3", "\n".join(lines))

    def dk_n(phone, rtt, label):
        return cells[(phone, rtt, label)].box("dk_n").median * 1e3

    # Figure 3(a)/(c): small overheads (< ~4 ms) at 10 ms intervals.
    assert dk_n("nexus4", 30, "10ms") < 4
    assert dk_n("nexus5", 30, "10ms") < 4
    # At 1 s, Nexus 5's Δdk−n exceeds Nexus 4's (SDIO vs SMD wake cost).
    assert dk_n("nexus5", 60, "1s") > dk_n("nexus4", 60, "1s")
    assert dk_n("nexus5", 60, "1s") > 10  # paper: ~18 ms median
    # Δdu−k stays sub-millisecond in every cell.
    for key, overheads in cells.items():
        assert abs(overheads.box("du_k").median) < 1e-3, key
