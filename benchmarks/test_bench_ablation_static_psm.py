"""Ablation A6 — static vs adaptive PSM (the §3.2.2 contrast).

"Static PSM could lead to RTT round-up effect and degrade network
performance [19], [so] adaptive PSM is usually adopted by smartphones
today."  This bench puts numbers on that: the same 5 ms path measured
from a station running static PSM, adaptive PSM, and no PSM.

It also probes a *boundary condition* of the paper's mitigation: since
a static-PSM station returns to PS immediately after each transmission
(there is no idle timeout for background traffic to keep resetting),
AcuteMon cannot puncture the round-up on such a device — the scheme
relies on the adaptive PSM every phone in Table 4 actually runs.
"""

import statistics

import pytest

from repro.analysis.render import Table
from repro.core.acutemon import AcuteMon, AcuteMonConfig
from repro.core.measurement import ProbeCollector
from repro.phone.profiles import NEXUS_5, PhoneProfile
from repro.testbed.topology import Testbed
from repro.tools.ping import PingTool
from repro.wifi.sta import MODE_STATIC

from paper_reference import save_report

PROBES = 40
RTT = 0.005  # a short campus path: round-up dominates utterly


def _static_profile():
    base = NEXUS_5
    return PhoneProfile(
        key="nexus5-static", name=base.name,
        android_version=base.android_version, cpu_desc=base.cpu_desc,
        cores=base.cores, ram_mb=base.ram_mb, chipset=base.chipset,
        cpu_factor=base.cpu_factor, psm_timeout=base.psm_timeout,
        psm_timeout_jitter=0.0,
        listen_interval_assoc=base.listen_interval_assoc,
    )


def _build(mode, seed):
    testbed = Testbed(seed=seed, emulated_rtt=RTT)
    if mode == "static":
        phone = testbed.add_phone(_static_profile(), bus_sleep=False)
        phone.sta.psm.mode = MODE_STATIC
        phone.sta.psm.timeout_jitter = 0.0
    elif mode == "adaptive":
        phone = testbed.add_phone("nexus5", bus_sleep=False)
    else:  # cam
        phone = testbed.add_phone("nexus5", bus_sleep=False,
                                  psm_enabled=False)
    collector = ProbeCollector(phone)
    testbed.settle(0.5)
    return testbed, phone, collector


def run_modes():
    rows = {}
    for index, mode in enumerate(("static", "adaptive", "cam")):
        testbed, phone, collector = _build(mode, seed=9960 + index)
        tool = PingTool(phone, collector, testbed.server_ip, interval=0.5,
                        timeout=2.0)
        tool.run_sync(PROBES)
        rows[mode] = tool.rtts()
    # AcuteMon against the static-PSM phone.
    testbed, phone, collector = _build("static", seed=9970)
    config = AcuteMonConfig(probe_count=PROBES, probe_gap=0.05)
    monitor = AcuteMon(phone, collector, testbed.server_ip, config=config)
    done = []
    monitor.start(on_complete=lambda r: done.append(r))
    while not done:
        testbed.sim.step()
    rows["static+acutemon"] = monitor.rtts()
    return rows


def test_ablation_static_psm_roundup(benchmark):
    rows = benchmark.pedantic(run_modes, rounds=1, iterations=1)

    table = Table(
        ["PSM flavour", "median RTT (ms)", "p90 (ms)", "max (ms)"],
        title=f"Ablation A6: RTT round-up under static PSM "
              f"(true path RTT {RTT * 1e3:.0f} ms, beacons every 102.4 ms)",
    )
    for mode, rtts in rows.items():
        ordered = sorted(rtts)
        table.add_row(
            mode,
            f"{statistics.median(ordered) * 1e3:.1f}",
            f"{ordered[int(0.9 * len(ordered))] * 1e3:.1f}",
            f"{ordered[-1] * 1e3:.1f}",
        )
    save_report("ablation_static_psm", table.render())

    static = statistics.median(rows["static"])
    adaptive = statistics.median(rows["adaptive"])
    cam = statistics.median(rows["cam"])
    punctured = statistics.median(rows["static+acutemon"])
    # Round-up: static RTTs are beacon-scale despite the 5 ms path.
    assert static > 0.020
    assert max(rows["static"]) < 0.1024 + 0.02
    # Adaptive PSM dozes between 0.5 s probes too, but the uplink send
    # re-enters CAM and the response (RTT << Tip) arrives cleanly.
    assert adaptive < 0.015
    assert cam < 0.015
    # Boundary condition of the paper's mitigation: background traffic
    # holds off *timeout-based* demotion, but a static-PSM station
    # returns to PS immediately after every transmission, so the
    # round-up persists even under AcuteMon.  (All phones in Table 4 run
    # adaptive PSM, which is why the paper's scheme works in practice.)
    assert punctured > 0.020
    assert punctured == pytest.approx(static, rel=0.6)
