"""Benchmark-suite configuration.

Ensures the shared ``paper_reference`` module is importable regardless of
how pytest was invoked, and keeps pytest-benchmark output stable (each
benchmark is one full experiment; they are run pedantically with a
single round inside the tests themselves).
"""

import pathlib
import sys

_HERE = pathlib.Path(__file__).parent
if str(_HERE) not in sys.path:
    sys.path.insert(0, str(_HERE))

_REPORT_ORDER = (
    "table2", "fig3", "table3", "table4", "table5", "fig7", "fig8", "fig9",
    "ablation_timing", "ablation_ping2", "ablation_psm",
    "ablation_cellular", "ablation_energy", "ablation_static_psm",
    "ablation_methods",
)


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    """Echo the paper-vs-measured reports into the terminal output.

    Passing tests have their stdout captured, so without this the
    regenerated tables would only exist under benchmarks/results/.
    """
    results_dir = _HERE / "results"
    if not results_dir.is_dir():
        return
    write = terminalreporter.write_line
    write("")
    write("=" * 70)
    write("Regenerated paper tables and figures (also in benchmarks/results/)")
    write("=" * 70)
    seen = set()
    for name in _REPORT_ORDER:
        path = results_dir / f"{name}.txt"
        if path.exists():
            seen.add(path.name)
            write("")
            write(path.read_text().rstrip())
    for path in sorted(results_dir.glob("*.txt")):
        if path.name not in seen:
            write("")
            write(path.read_text().rstrip())
