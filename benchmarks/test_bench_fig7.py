"""Figure 7 — box plots of AcuteMon's Δdu−k and Δdk−n (§4.2.2).

Three phones (the paper shows Nexus 5, Samsung Grand, Nexus 4 — "the
rest have very similar results"), four emulated RTTs.  Expected shape:
Δdu−k below ~0.5 ms (1 ms on the slow phones), Δdk−n medians below
~2 ms (as small as ~0.8 ms on the Qualcomm phones), upper whiskers below
~3 ms, and — crucially — overheads independent of the emulated RTT.
"""

import statistics

from repro.analysis.render import render_boxplot_row
from repro.testbed.experiments import acutemon_experiment

from paper_reference import PHONE_NAMES, save_report

PROBES = 100
RTTS_MS = (20, 50, 85, 135)
PHONES = ("nexus5", "galaxy_grand", "nexus4")


def run_fig7():
    cells = {}
    for p_index, phone in enumerate(PHONES):
        for r_index, rtt_ms in enumerate(RTTS_MS):
            result = acutemon_experiment(
                phone, emulated_rtt=rtt_ms * 1e-3, count=PROBES,
                seed=7000 + p_index * 10 + r_index,
            )
            cells[(phone, rtt_ms)] = result.overheads
    return cells


def test_fig7_acutemon_overheads(benchmark):
    cells = benchmark.pedantic(run_fig7, rounds=1, iterations=1)

    lines = ["Figure 7: AcuteMon delay overheads (box stats, ms)"]
    for phone in PHONES:
        lines.append("")
        lines.append(f"-- {PHONE_NAMES[phone]} --")
        for rtt_ms in RTTS_MS:
            overheads = cells[(phone, rtt_ms)]
            lines.append(render_boxplot_row(
                f"  {rtt_ms}ms (u):", overheads.box("du_k")))
            lines.append(render_boxplot_row(
                f"  {rtt_ms}ms (k):", overheads.box("dk_n")))
    save_report("fig7", "\n".join(lines))

    for (phone, rtt_ms), overheads in cells.items():
        du_k = overheads.box("du_k")
        dk_n = overheads.box("dk_n")
        # Δdu−k: < 0.5 ms on fast phones, < 1 ms on slow ones.
        limit = 1e-3 if phone in ("galaxy_grand", "xperia_j") else 0.5e-3
        assert du_k.median < limit, (phone, rtt_ms)
        # Δdk−n medians stay small (paper: < ~2 ms; our DCF model adds a
        # little protection/contention slack — see EXPERIMENTS.md).
        assert dk_n.median < 3.0e-3, (phone, rtt_ms)
        assert overheads.box("total").median < 3.6e-3, (phone, rtt_ms)

    # Qualcomm WNICs show smaller Δdk−n than Broadcom (paper: ~0.8 ms).
    n4 = statistics.median(
        cells[("nexus4", r)].box("dk_n").median for r in RTTS_MS)
    n5 = statistics.median(
        cells[("nexus5", r)].box("dk_n").median for r in RTTS_MS)
    assert n4 < n5

    # Overheads are independent of the emulated RTT.
    for phone in PHONES:
        medians = [cells[(phone, r)].box("dk_n").median for r in RTTS_MS]
        assert max(medians) - min(medians) < 1.2e-3, phone
