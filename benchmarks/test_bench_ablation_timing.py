"""Ablation A1 — sweeping AcuteMon's dpre and db around the demotion
timers.

DESIGN.md calls out the warm-up policy ``Tprom < dpre < min(Tis, Tip)``
and ``db < min(Tis, Tip)`` as the load-bearing design choice; this bench
sweeps both knobs on the Nexus 5 (Tis = 50 ms, Tip ~ 205 ms → floor
50 ms) and shows the cliff: overheads stay flat while the constraint
holds and jump by the bus wake cost once ``db`` crosses ``Tis``.
"""

from repro.analysis.render import Table
from repro.core.overhead import decompose
from repro.core.warmup import WarmupPolicy
from repro.phone.profiles import NEXUS_5
from repro.testbed.experiments import acutemon_experiment

from paper_reference import save_report

PROBES = 50
DB_SWEEP_MS = (5, 10, 20, 30, 40, 45, 60, 80, 100)
DPRE_SWEEP_MS = (5, 10, 20, 35, 45)


def run_sweep():
    policy = WarmupPolicy.for_profile(NEXUS_5)
    db_rows = {}
    for index, db_ms in enumerate(DB_SWEEP_MS):
        result = acutemon_experiment(
            "nexus5", emulated_rtt=0.030, count=PROBES,
            seed=9500 + index, db=db_ms * 1e-3,
            probe_gap=0.150,  # sparse probes: the BT must carry the load
        )
        overheads = decompose(result.collector.completed())
        db_rows[db_ms] = {
            "median": overheads.box("total").median,
            "p90": sorted(overheads.series("total"))[
                int(0.9 * len(overheads.series("total")))],
            "plan_valid": policy.plan(db=db_ms * 1e-3).valid,
            "bus_sleeps": result.phone.driver.bus.sleep_count,
        }
    dpre_rows = {}
    for index, dpre_ms in enumerate(DPRE_SWEEP_MS):
        result = acutemon_experiment(
            "nexus5", emulated_rtt=0.030, count=10,
            seed=9600 + index, dpre=dpre_ms * 1e-3,
        )
        records = result.collector.completed()
        first = records[0] if records else None
        dpre_rows[dpre_ms] = {
            "first_overhead": (first.du - first.dn) if first else None,
            "plan_valid": policy.plan(dpre=dpre_ms * 1e-3).valid,
        }
    return db_rows, dpre_rows


def test_ablation_warmup_timing(benchmark):
    db_rows, dpre_rows = benchmark.pedantic(run_sweep, rounds=1,
                                            iterations=1)

    table = Table(
        ["db (ms)", "policy says", "median overhead (ms)",
         "p90 (ms)", "bus sleeps"],
        title="Ablation A1a: background interval db vs overhead "
              "(Nexus 5, Tis=50ms, probes 150ms apart)",
    )
    for db_ms, row in db_rows.items():
        table.add_row(
            db_ms, "valid" if row["plan_valid"] else "VIOLATES",
            f"{row['median'] * 1e3:.2f}", f"{row['p90'] * 1e3:.2f}",
            row["bus_sleeps"],
        )
    report = table.render()

    table2 = Table(
        ["dpre (ms)", "policy says", "first-probe overhead (ms)"],
        title="Ablation A1b: warm-up lead dpre vs first-probe overhead",
    )
    for dpre_ms, row in dpre_rows.items():
        overhead = row["first_overhead"]
        table2.add_row(
            dpre_ms, "valid" if row["plan_valid"] else "VIOLATES",
            f"{overhead * 1e3:.2f}" if overhead is not None else "?",
        )
    save_report("ablation_timing", report + "\n\n" + table2.render())

    valid_medians = [row["median"] for db, row in db_rows.items()
                     if row["plan_valid"]]
    invalid_medians = [row["median"] for db, row in db_rows.items()
                       if not row["plan_valid"]]
    assert valid_medians and invalid_medians
    # Valid plans: flat, small overhead; invalid: the bus sleeps between
    # background packets and probes pay the wake.
    assert max(valid_medians) < 4e-3
    assert max(invalid_medians) > max(valid_medians) + 4e-3
    # The policy's verdict matches the observed cliff.
    for db_ms, row in db_rows.items():
        if db_ms <= 40:
            assert row["plan_valid"], db_ms
        if db_ms >= 60:
            assert not row["plan_valid"], db_ms

    # dpre below Tprom starts probing before the bus is up: the first
    # probe still eats (part of) the promotion delay.
    short = dpre_rows[5]["first_overhead"]
    comfortable = dpre_rows[20]["first_overhead"]
    assert short is not None and comfortable is not None
    assert short > comfortable
