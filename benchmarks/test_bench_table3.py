"""Table 3 — driver delays dvsend/dvrecv vs the SDIO sleep feature
(§3.2.1).

Regenerates the rebuilt-driver instrumentation on the Nexus 5: 100 ICMP
probes at 10 ms and 1 s intervals, with the bus-sleep feature enabled and
disabled, at an emulated RTT of 60 ms (beyond ``Tis`` so the receive
direction also finds the bus asleep at sparse intervals).

Expected shape: with sleep enabled and a 1 s interval, the mean dvsend
jumps to ~10 ms and dvrecv to ~12 ms; disabling the feature (or probing
fast) keeps both around or below a millisecond.
"""

from repro.analysis.render import Table
from repro.analysis.stats import SummaryStats
from repro.testbed.experiments import ping_experiment

from paper_reference import TABLE3, save_report

PROBES = 100


def run_table3():
    rows = {}
    for sleep_enabled in (True, False):
        for label, interval in (("10ms", 0.010), ("1000ms", 1.0)):
            result = ping_experiment(
                "nexus5", emulated_rtt=0.060, interval=interval,
                count=PROBES, seed=3100 + int(sleep_enabled),
                bus_sleep=sleep_enabled,
            )
            driver = result.phone.driver
            for kind in ("send", "recv"):
                rows[(kind, sleep_enabled, label)] = SummaryStats(
                    driver.samples_of(kind))
    return rows


def test_table3_driver_delays(benchmark):
    rows = benchmark.pedantic(run_table3, rounds=1, iterations=1)

    table = Table(
        ["Type", "Bus sleep", "Interval", "Min", "Mean", "Max",
         "paper (min/mean/max)"],
        title="Table 3: dvsend and dvrecv on Nexus 5 (ms)",
    )
    for (kind, enabled, label), stats in sorted(
            rows.items(), key=lambda kv: (kv[0][0], not kv[0][1], kv[0][2])):
        paper_key = (kind, enabled, "10ms" if label == "10ms" else "1s")
        paper = TABLE3[paper_key]
        table.add_row(
            f"dv{kind}", "Enabled" if enabled else "Disabled", label,
            f"{stats.minimum * 1e3:.3f}", f"{stats.mean * 1e3:.3f}",
            f"{stats.maximum * 1e3:.3f}",
            f"{paper[0]:.3f}/{paper[1]:.3f}/{paper[2]:.3f}",
        )
    save_report("table3", table.render())

    def mean_ms(kind, enabled, label):
        return rows[(kind, enabled, label)].mean * 1e3

    # Sleep enabled + sparse probing pays the promotion delay.
    assert mean_ms("send", True, "1000ms") > 7
    assert mean_ms("recv", True, "1000ms") > 7
    # Fast probing or disabling the feature keeps the paths cheap.
    assert mean_ms("send", True, "10ms") < 1.5
    assert mean_ms("send", False, "1000ms") < 1.5
    assert mean_ms("recv", False, "1000ms") < 3
    # The wake cost itself is bounded by the chipset's Tprom (~13.5 ms).
    assert rows[("send", True, "1000ms")].maximum < 16e-3
