"""Engine performance benchmarks.

Unlike the table/figure benches (one pedantic round each), these use
pytest-benchmark conventionally to track the simulator's raw speed —
useful when changing the event loop, the DCF model, or the packet
encoders, where a regression quietly multiplies every experiment's wall
time.
"""

from repro.net import wire
from repro.net.addresses import ip
from repro.net.packet import IcmpEcho, Packet, TcpSegment, UdpDatagram
from repro.sim.scheduler import Simulator
from repro.testbed.experiments import ping_experiment


def test_perf_event_loop(benchmark):
    """Raw scheduler throughput: schedule + fire chains of events."""

    def run():
        sim = Simulator(seed=1)
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < 20_000:
                sim.schedule(1e-4, tick)

        sim.schedule(0.0, tick)
        sim.run()
        return count[0]

    events = benchmark(run)
    assert events == 20_000


def test_perf_wire_encoding(benchmark):
    """IPv4/transport encode+decode round trips per second."""
    packets = [
        Packet(ip("10.0.0.1"), ip("10.0.0.2"), IcmpEcho(8, 1, 1, 56),
               meta={"probe_id": 1}),
        Packet(ip("10.0.0.1"), ip("10.0.0.2"), UdpDatagram(1000, 2000, 512),
               meta={"probe_id": 2}),
        Packet(ip("10.0.0.1"), ip("10.0.0.2"),
               TcpSegment(1000, 80, 5, 9, 0x18, 1024),
               meta={"probe_id": 3}),
    ]

    def run():
        total = 0
        for _ in range(200):
            for packet in packets:
                total += len(wire.encode_ipv4(packet))
                wire.decode_ipv4(wire.encode_ipv4(packet))
        return total

    assert benchmark(run) > 0


def test_perf_full_ping_experiment(benchmark):
    """End-to-end cost of one small multi-layer ping experiment."""

    def run():
        result = ping_experiment("nexus5", emulated_rtt=0.03,
                                 interval=0.01, count=20, seed=5)
        return len(result.layers["du"])

    assert benchmark.pedantic(run, rounds=3, iterations=1) == 20
