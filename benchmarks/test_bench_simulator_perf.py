"""Engine performance benchmarks.

Unlike the table/figure benches (one pedantic round each), these use
pytest-benchmark conventionally to track the simulator's raw speed —
useful when changing the event loop, the DCF model, or the packet
encoders, where a regression quietly multiplies every experiment's wall
time.

PR 6 raised the workloads to steady-state sizes (100k chained events,
200k batched train ticks, 3000-packet wire batches) and split the
scheduler bench in two: the chained shape exercises the timing wheel's
general path (schedule + fire per event), the train shape its batched
fast path.  ``tests/test_perf_smoke.py`` runs one-shot miniatures of
the same shapes inside tier-1 and gates them via
``scripts/bench_compare.py``.
"""

from repro.net import wire
from repro.net.addresses import ip
from repro.net.packet import IcmpEcho, Packet, TcpSegment, UdpDatagram
from repro.sim.scheduler import Simulator
from repro.testbed.experiments import ping_experiment

_CHAIN_EVENTS = 100_000
_TRAIN_EVENTS = 200_000 + 1_999  # probe train + watchdog (see perf smoke)
_WIRE_BATCH = 3_000


def test_perf_event_loop(benchmark):
    """General-path throughput: schedule + fire chains of events."""

    def run():
        sim = Simulator(seed=1)
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < _CHAIN_EVENTS:
                sim.schedule(1e-4, tick)

        sim.schedule(0.0, tick)
        sim.run()
        return count[0]

    events = benchmark(run)
    assert events == _CHAIN_EVENTS


def test_perf_train_steady_state(benchmark):
    """Batched fast path: a dense periodic train plus one watchdog."""

    def run():
        sim = Simulator(seed=1)
        count = [0]

        def tick():
            count[0] += 1

        sim.schedule_periodic(1e-4, tick, label="probe:loop")
        sim.schedule_periodic(0.01, tick, phase=0.005,
                              label="watchdog:bus")
        sim.run(until=20.0)
        return count[0]

    assert benchmark(run) == _TRAIN_EVENTS


def test_perf_wire_encoding(benchmark):
    """Scalar IPv4/transport encode+decode round trips."""
    packets = [
        Packet(ip("10.0.0.1"), ip("10.0.0.2"), IcmpEcho(8, 1, 1, 56),
               meta={"probe_id": 1}),
        Packet(ip("10.0.0.1"), ip("10.0.0.2"), UdpDatagram(1000, 2000, 512),
               meta={"probe_id": 2}),
        Packet(ip("10.0.0.1"), ip("10.0.0.2"),
               TcpSegment(1000, 80, 5, 9, 0x18, 1024),
               meta={"probe_id": 3}),
    ]

    def run():
        total = 0
        for _ in range(200):
            for packet in packets:
                total += len(wire.encode_ipv4(packet))
                wire.decode_ipv4(wire.encode_ipv4(packet))
        return total

    assert benchmark(run) > 0


def test_perf_wire_batch_round_trip(benchmark):
    """Vectorized batch encode + decode of probe-id-varied packets."""
    src, dst = ip("10.0.0.1"), ip("10.0.0.2")
    packets = []
    for index in range(_WIRE_BATCH):
        kind = index % 3
        if kind == 0:
            payload = IcmpEcho(8, 1, index & 0xFFFF, 56)
        elif kind == 1:
            payload = UdpDatagram(40_000 + (index % 100), 33_434, 512)
        else:
            payload = TcpSegment(40_000 + (index % 100), 80,
                                 index, 0, 0x18, 1024)
        packets.append(Packet(src, dst, payload,
                              meta={"probe_id": index + 1}))

    def run():
        blobs = wire.encode_ipv4_batch(packets)
        for blob in blobs:
            wire.decode_ipv4(blob)
        return len(blobs)

    assert benchmark(run) == _WIRE_BATCH


def test_perf_full_ping_experiment(benchmark):
    """End-to-end cost of one small multi-layer ping experiment."""

    def run():
        result = ping_experiment("nexus5", emulated_rtt=0.03,
                                 interval=0.01, count=20, seed=5)
        return len(result.layers["du"])

    assert benchmark.pedantic(run, rounds=3, iterations=1) == 20
