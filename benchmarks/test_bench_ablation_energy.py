"""Ablation A5 — the battery cost of accurate measurement (§4.1).

"AcuteMon consumes very low battery, because it sends out very few
additional packets in the measurement phase, and will not affect the
energy-saving mechanisms when there are no measurement tasks."

Three strategies over the same 30-second window containing one
100-probe measurement of a 30 ms path:

* **idle** — no measurement at all (the energy floor),
* **acutemon** — warm-up + background traffic only while measuring,
* **always_awake** — the naive alternative: disable PSM and bus sleep
  for the whole window (what "just keep the phone awake" costs).
"""

from repro.analysis.render import Table
from repro.core.acutemon import AcuteMon, AcuteMonConfig
from repro.core.measurement import ProbeCollector
from repro.core.overhead import decompose
from repro.phone.energy import EnergyMeter
from repro.testbed.topology import Testbed

from paper_reference import save_report

WINDOW = 30.0
PROBES = 100


def run_strategy(strategy, seed):
    testbed = Testbed(seed=seed, emulated_rtt=0.03)
    phone = testbed.add_phone(
        "nexus5",
        psm_enabled=(strategy != "always_awake"),
        bus_sleep=(strategy != "always_awake"),
    )
    meter = EnergyMeter(phone)
    collector = ProbeCollector(phone)
    testbed.settle(0.5)
    overhead_median = None
    if strategy in ("acutemon", "always_awake"):
        config = AcuteMonConfig(
            probe_count=PROBES,
            warmup_enabled=(strategy == "acutemon"),
            background_enabled=(strategy == "acutemon"),
        )
        monitor = AcuteMon(phone, collector, testbed.server_ip,
                           config=config)
        done = []
        monitor.start(on_complete=lambda r: done.append(r))
        while not done:
            testbed.sim.step()
        overheads = decompose(collector.completed())
        overhead_median = overheads.box("total").median
    remaining = WINDOW - testbed.sim.now
    if remaining > 0:
        testbed.run(remaining)
    return {
        "energy_J": meter.energy_joules(),
        "avg_mW": meter.average_power_watts() * 1e3,
        "doze_s": meter.doze_time,
        "overhead_ms": (overhead_median * 1e3
                        if overhead_median is not None else None),
    }


def run_energy():
    return {
        strategy: run_strategy(strategy, seed=9950 + index)
        for index, strategy in enumerate(("idle", "acutemon", "always_awake"))
    }


def test_ablation_energy_budget(benchmark):
    results = benchmark.pedantic(run_energy, rounds=1, iterations=1)

    table = Table(
        ["Strategy", "Energy (J / 30s)", "Avg power (mW)", "Doze time (s)",
         "Overhead median (ms)"],
        title="Ablation A5: radio+bus energy over a 30 s window with one "
              "100-probe measurement",
    )
    for name, row in results.items():
        table.add_row(
            name, f"{row['energy_J']:.2f}", f"{row['avg_mW']:.0f}",
            f"{row['doze_s']:.1f}",
            f"{row['overhead_ms']:.2f}" if row["overhead_ms"] else "-",
        )
    save_report("ablation_energy", table.render())

    idle = results["idle"]["energy_J"]
    acutemon = results["acutemon"]["energy_J"]
    always = results["always_awake"]["energy_J"]
    # AcuteMon costs more than doing nothing, but a small fraction of the
    # keep-awake strategy — while measuring just as accurately.
    assert idle < acutemon < always
    assert acutemon < always / 3
    assert results["acutemon"]["overhead_ms"] < 3.6
    assert results["always_awake"]["overhead_ms"] < 3.6
    # Outside the measurement, AcuteMon lets the phone doze again.
    assert results["acutemon"]["doze_s"] > WINDOW * 0.6
