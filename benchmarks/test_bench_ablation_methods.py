"""Ablation A7 — AcuteMon probe methods.

§4.1: "In the current version, AcuteMon uses TCP control messages (TCP
SYN/ACK packets) and TCP data packets (HTTP request and response) to
measure nRTT ... The implementation can be easily extended to UDP and
ICMP packets."  All four are implemented; this bench verifies the
measured nRTT and the overhead decomposition are method-independent
(within the small per-protocol costs), so tool choice is a deployment
question, not an accuracy one.
"""

import statistics

from repro.analysis.render import Table
from repro.testbed.experiments import acutemon_experiment

from paper_reference import save_report

PROBES = 60
METHODS = ("tcp_syn", "http", "icmp", "udp")
RTT = 0.050


def run_methods():
    cells = {}
    for index, method in enumerate(METHODS):
        result = acutemon_experiment(
            "nexus5", emulated_rtt=RTT, count=PROBES, seed=9980 + index,
            probe_method=method,
        )
        cells[method] = result
    return cells


def test_ablation_probe_methods(benchmark):
    cells = benchmark.pedantic(run_methods, rounds=1, iterations=1)

    table = Table(
        ["Method", "median du (ms)", "median dn (ms)",
         "overhead median (ms)", "losses"],
        title=f"Ablation A7: AcuteMon probe methods "
              f"(Nexus 5, emulated RTT {RTT * 1e3:.0f} ms)",
    )
    medians = {}
    for method, result in cells.items():
        du = statistics.median(result.user_rtts)
        dn = statistics.median(result.layers["dn"])
        overhead = result.overheads.box("total").median
        medians[method] = overhead
        table.add_row(method, f"{du * 1e3:.2f}", f"{dn * 1e3:.2f}",
                      f"{overhead * 1e3:.2f}",
                      result.acutemon.loss_count())
    save_report("ablation_methods", table.render())

    for method, result in cells.items():
        dn = statistics.median(result.layers["dn"])
        assert abs(dn - RTT) < 3e-3, method
        assert result.acutemon.loss_count() == 0, method
        assert medians[method] < 4e-3, method
    # Method-independence: all overhead medians within ~1.5 ms of each
    # other (HTTP adds the server's application turn-around).
    assert max(medians.values()) - min(medians.values()) < 1.5e-3
