"""Table 4 — PSM timeout values and listen intervals per phone (§3.2.2).

The paper measured ``Tip`` by "carefully sending out packets with
increased packet sending interval" and read the listen intervals from
association frames and observed behaviour.  This bench runs the
calibration machinery (:mod:`repro.core.calibration`) against each of
the five phones:

* passively — PM-bit null frames in the sniffer capture give ``Tip``
  directly, and TIM-to-fetch distances give the actual listen interval;
* actively (Nexus 4, as a cross-check) — ramping server-side response
  delays until responses start hitting power-save buffering.
"""

from repro.analysis.render import Table
from repro.core.calibration import TimerCalibrator
from repro.core.measurement import ProbeCollector
from repro.phone.profiles import phone_profile
from repro.testbed.topology import Testbed

from paper_reference import TABLE4, PHONE_NAMES, save_report


def calibrate_phone(phone_key, seed):
    testbed = Testbed(seed=seed, emulated_rtt=0.0)
    phone = testbed.add_phone(phone_key)
    collector = ProbeCollector(phone)
    testbed.settle(0.5)
    calibrator = TimerCalibrator(phone, collector, testbed.server_ip)

    # Traffic pattern that produces doze cycles: a ping every 1.2 s.
    for index in range(8):
        testbed.sim.schedule(index * 1.2, phone.stack.send_echo_request,
                             testbed.server_ip, 2, index)
    testbed.run(10.0)

    # Plus buffered-downlink cycles for listen-interval inference.
    phone.stack.udp_bind(4444, lambda p: None)
    for index in range(4):
        testbed.sim.schedule(
            1.5 * index + 1.0, testbed.server_host.stack.send_udp,
            phone.ip_addr, 4444, None, 32)
    testbed.run(8.0)

    records = testbed.merged_capture()
    result = calibrator.infer_psm_from_sniffer(records)
    result = result.merged_with(calibrator.infer_listen_interval(records))
    return result


def run_table4():
    passive = {key: calibrate_phone(key, seed=4000 + i)
               for i, key in enumerate(TABLE4)}
    # Active cross-check on the phone with the shortest timeout.
    testbed = Testbed(seed=4900, emulated_rtt=0.0)
    phone = testbed.add_phone("nexus4")
    collector = ProbeCollector(phone)
    testbed.settle(0.5)
    calibrator = TimerCalibrator(phone, collector, testbed.server_ip)
    active = calibrator.infer_psm(
        delays=[d * 1e-3 for d in range(20, 160, 10)], repeats=3)
    return passive, active


def test_table4_psm_timeouts(benchmark):
    passive, active = benchmark.pedantic(run_table4, rounds=1, iterations=1)

    table = Table(
        ["Phone", "Tip (measured)", "Tip (paper)",
         "L assoc (paper)", "L actual", "L actual (paper)"],
        title="Table 4: PSM timeout values and listen intervals",
    )
    for key, result in passive.items():
        paper_tip, paper_assoc, paper_actual = TABLE4[key]
        measured = (f"{result.t_ip * 1e3:.0f}ms"
                    if result.t_ip is not None else "?")
        actual = (str(result.listen_interval)
                  if result.listen_interval is not None else "?")
        table.add_row(PHONE_NAMES[key], measured, f"~{paper_tip}ms",
                      paper_assoc, actual, paper_actual)
    report = table.render()
    if active.t_ip is not None:
        report += (f"\n\nActive (delay-ramp) cross-check on Nexus 4: "
                   f"Tip ≈ {active.t_ip * 1e3:.0f}ms (paper: ~40ms)")
    save_report("table4", report)

    for key, result in passive.items():
        paper_tip = TABLE4[key][0] * 1e-3
        assert result.t_ip is not None, key
        # Within the configured jitter plus estimation error.
        profile = phone_profile(key)
        tolerance = profile.psm_timeout_jitter + 0.02
        assert abs(result.t_ip - paper_tip) < tolerance, key
        assert result.listen_interval == 0, key
    assert active.t_ip is not None
    assert 0.02 < active.t_ip < 0.08
