"""Published numbers from the paper, for paper-vs-measured reports.

Every benchmark prints the rows the paper reports next to the values the
simulation regenerates.  Absolute agreement is not expected (the
substrate is a simulator, not the authors' testbed — see DESIGN.md);
the *shape* (who wins, by what rough factor, where crossovers fall) is
what the benches assert.
"""

import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

# Table 2 — RTTs measured at different layers (mean, ms).
TABLE2 = {
    # (phone, emulated_rtt_ms, interval): (du, dk, dn)
    ("nexus4", 30, "10ms"): (33.16, 32.46, 31.29),
    ("nexus4", 30, "1s"): (48.15, 48.10, 42.58),
    ("nexus4", 60, "10ms"): (63.91, 63.86, 62.32),
    ("nexus4", 60, "1s"): (136.33, 136.66, 130.03),
    ("nexus5", 30, "10ms"): (33.38, 33.27, 31.22),
    ("nexus5", 30, "1s"): (43.21, 43.03, 31.78),
    ("nexus5", 60, "10ms"): (64.18, 64.08, 61.61),
    ("nexus5", 60, "1s"): (81.98, 81.83, 62.35),
}

# Table 3 — dvsend / dvrecv (min, mean, max, ms) on Nexus 5.
TABLE3 = {
    ("send", True, "10ms"): (0.096, 0.321, 10.184),
    ("send", True, "1s"): (0.139, 10.151, 13.547),
    ("send", False, "10ms"): (0.092, 0.229, 0.836),
    ("send", False, "1s"): (0.139, 0.720, 0.858),
    ("recv", True, "10ms"): (0.314, 1.635, 2.827),
    ("recv", True, "1s"): (0.368, 12.754, 14.224),
    ("recv", False, "10ms"): (0.311, 1.589, 2.651),
    ("recv", False, "1s"): (0.362, 1.756, 2.088),
}

# Table 4 — PSM timeout (ms) and listen intervals.
TABLE4 = {
    "nexus4": (40, 1, 0),
    "nexus5": (205, 10, 0),
    "galaxy_grand": (45, 10, 0),
    "htc_one": (400, 1, 0),
    "xperia_j": (210, 10, 0),
}

# Table 5 — actual nRTT dn under AcuteMon (mean, ms).
TABLE5 = {
    ("nexus5", 20): 22.461, ("nexus5", 50): 51.683,
    ("nexus5", 85): 87.198, ("nexus5", 135): 137.090,
    ("xperia_j", 20): 21.584, ("xperia_j", 50): 51.597,
    ("xperia_j", 85): 86.868, ("xperia_j", 135): 136.79,
    ("galaxy_grand", 20): 22.020, ("galaxy_grand", 50): 52.614,
    ("galaxy_grand", 85): 86.675, ("galaxy_grand", 135): 137.0,
    ("nexus4", 20): 21.680, ("nexus4", 50): 51.673,
    ("nexus4", 85): 86.888, ("nexus4", 135): 137.98,
    ("htc_one", 20): 21.874, ("htc_one", 50): 51.786,
    ("htc_one", 85): 86.810, ("htc_one", 135): 136.850,
}

PHONE_NAMES = {
    "nexus5": "Google Nexus 5",
    "nexus4": "Google Nexus 4",
    "htc_one": "HTC One",
    "xperia_j": "Sony Xperia J",
    "galaxy_grand": "Samsung Grand",
}


def save_report(name, text):
    """Print a report and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print()
    print(text)
    return path
