"""Ablation A2 — ping2 (Sui et al.) vs AcuteMon across path lengths.

§1 of the paper: "ping2 can be used only for network paths with short
nRTT and cannot remove the inflations completely, because, when nRTT is
long, the device could fall back to the inactive state again before it
receives the response packet and starts the second ping."

This bench sweeps the emulated RTT across the Nexus 5's ``Tis`` (50 ms)
and shows the crossover: ping2's error is small below it and jumps by
the bus wake above it, while AcuteMon's error stays flat.
"""

import statistics

from repro.analysis.render import Table
from repro.testbed.experiments import acutemon_experiment, ping2_experiment

from paper_reference import save_report

PROBES = 30
RTTS_MS = (10, 20, 35, 50, 65, 85, 110, 135)


def run_sweep():
    rows = {}
    for index, rtt_ms in enumerate(RTTS_MS):
        rtt = rtt_ms * 1e-3
        ping2 = ping2_experiment(
            "nexus5", emulated_rtt=rtt, count=PROBES, seed=9700 + index)
        acute = acutemon_experiment(
            "nexus5", emulated_rtt=rtt, count=PROBES, seed=9700 + index)
        rows[rtt_ms] = {
            "ping2_err": statistics.median(ping2.tool.rtts()) - rtt,
            "acute_err": statistics.median(acute.user_rtts) - rtt,
        }
    return rows


def test_ablation_ping2_crossover(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    table = Table(
        ["Emulated RTT (ms)", "ping2 median error (ms)",
         "AcuteMon median error (ms)"],
        title="Ablation A2: ping2 vs AcuteMon error across path lengths "
              "(Nexus 5, Tis=50ms)",
    )
    for rtt_ms, row in rows.items():
        table.add_row(rtt_ms, f"{row['ping2_err'] * 1e3:.2f}",
                      f"{row['acute_err'] * 1e3:.2f}")
    save_report("ablation_ping2", table.render())

    short = [row["ping2_err"] for rtt, row in rows.items() if rtt <= 35]
    long = [row["ping2_err"] for rtt, row in rows.items() if rtt >= 65]
    # ping2 works on short paths...
    assert max(short) < 6e-3
    # ...and degrades by roughly a bus wake on long ones.
    assert min(long) > max(short) + 3e-3
    # AcuteMon's error is small and flat everywhere.
    acute_errs = [row["acute_err"] for row in rows.values()]
    assert max(acute_errs) < 5e-3
    assert max(acute_errs) - min(acute_errs) < 3e-3
    # On long paths AcuteMon strictly beats ping2.
    for rtt_ms, row in rows.items():
        if rtt_ms >= 65:
            assert row["acute_err"] < row["ping2_err"], rtt_ms
