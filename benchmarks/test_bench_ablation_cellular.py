"""Ablation A4 — AcuteMon on cellular (the paper's §4 extension claim).

"Although AcuteMon is designed mainly for WiFi networks, it can be
easily extended to cellular environment, mitigating the effect of RRC
state transition."  This bench measures a 50 ms emulated path from a
cellular phone with three strategies:

* naive sparse ping (20 s apart — the radio is IDLE every time and each
  probe reports the multi-second promotion delay),
* medium ping (4 s apart — the radio has demoted to the high-latency
  FACH state),
* AcuteMon with a cellular warm-up plan (dpre > promotion delay,
  db < T1): every probe rides a clean dedicated channel.
"""

import statistics

from repro.analysis.render import Table
from repro.cellular.rrc import RrcConfig
from repro.cellular.testbed import CellularTestbed
from repro.core.acutemon import AcuteMon, AcuteMonConfig
from repro.core.measurement import ProbeCollector
from repro.tools.ping import PingTool

from paper_reference import save_report

RTT = 0.050
PROBES = 12


def ping_strategy(interval, seed):
    testbed = CellularTestbed(seed=seed, emulated_rtt=RTT,
                              rrc_config=RrcConfig(t1=5.0, t2=12.0))
    collector = ProbeCollector(testbed.phone)
    tool = PingTool(testbed.phone, collector, testbed.server_ip,
                    interval=interval, timeout=8.0)
    samples = tool.run_sync(PROBES)
    ordered = sorted(samples, key=lambda s: s.sent_at)
    # Discard the first probe (cold start is the same for everyone).
    rtts = [s.rtt for s in ordered[1:] if s.rtt is not None]
    return rtts, testbed


def acutemon_strategy(seed):
    testbed = CellularTestbed(seed=seed, emulated_rtt=RTT,
                              rrc_config=RrcConfig(t1=5.0, t2=12.0))
    collector = ProbeCollector(testbed.phone)
    config = AcuteMonConfig(dpre=3.0, db=2.0, probe_count=PROBES,
                            probe_gap=4.0, probe_timeout=8.0)
    monitor = AcuteMon(testbed.phone, collector, testbed.server_ip,
                       config=config)
    done = []
    monitor.start(on_complete=lambda r: done.append(r))
    while not done:
        testbed.sim.step()
    return monitor.rtts()[1:], testbed


def run_cellular():
    idle_rtts, idle_bed = ping_strategy(interval=20.0, seed=9900)
    # 8 s sits between T1 (5 s) and T1+T2 (17 s): the radio is in FACH.
    fach_rtts, _ = ping_strategy(interval=8.0, seed=9901)
    acute_rtts, acute_bed = acutemon_strategy(seed=9902)
    return {
        "idle_ping": idle_rtts,
        "fach_ping": fach_rtts,
        "acutemon": acute_rtts,
        "idle_promotions": idle_bed.rrc.promotions,
        "acute_promotions": acute_bed.rrc.promotions,
    }


def test_ablation_cellular_rrc(benchmark):
    results = benchmark.pedantic(run_cellular, rounds=1, iterations=1)

    table = Table(
        ["Strategy", "median RTT (ms)", "p90 (ms)", "emulated (ms)"],
        title="Ablation A4: cellular RRC inflation vs AcuteMon "
              "(T1=5s, T2=12s, promo ~2s)",
    )
    for name in ("idle_ping", "fach_ping", "acutemon"):
        rtts = sorted(results[name])
        table.add_row(
            name,
            f"{statistics.median(rtts) * 1e3:.0f}",
            f"{rtts[int(0.9 * len(rtts))] * 1e3:.0f}",
            f"{RTT * 1e3:.0f}",
        )
    report = table.render()
    report += (f"\n\nRRC promotions: sparse ping {results['idle_promotions']}"
               f" (one per probe) vs AcuteMon {results['acute_promotions']}"
               " (one per session)")
    save_report("ablation_cellular", report)

    idle = statistics.median(results["idle_ping"])
    fach = statistics.median(results["fach_ping"])
    acute = statistics.median(results["acutemon"])
    # Sparse probes pay the full promotion; medium ones the FACH latency;
    # AcuteMon reports something close to the emulated RTT.
    assert idle > 1.5
    assert 0.2 < fach < 1.0
    assert acute < 0.2
    assert results["acute_promotions"] <= 2
    assert results["idle_promotions"] >= PROBES - 1
